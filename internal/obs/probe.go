package obs

import (
	"context"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphio/internal/persist"
)

// The probe layer records per-iteration solver events — one event per
// Lanczos restart, Chebyshev sweep, bisection refinement, Dinic phase,
// pebble step sample — for convergence analysis (obsreport convergence).
// Like the trace collector it is off by default and gated on one atomic
// load, so instrumented inner loops cost nothing in production runs; call
// sites that compute fields should additionally guard on EventsEnabled so
// the field math itself is skipped when nobody is listening.
//
// Events buffer in memory (bounded, with a dropped counter) and are
// flushed at Finish/interrupt time by DumpEvents as CRC-framed JSONL in
// the internal/persist journal format: each line is
//
//	{"crc":"xxxxxxxx","rec":{"probe":NAME,"iter":I,"t_ns":T,"f":{...}}}
//
// so persist.ReadJournal replays an event log with the same torn-tail
// tolerance as any other journal. Buffer-then-atomic-commit rather than
// journal appends keeps the per-record fsync out of solver inner loops
// while producing byte-identical framing.
const maxProbeEvents = 1 << 20

// Field is one named measurement on a probe event. Values are float64
// across the board (iteration counts included) to keep the event schema
// single-typed; non-finite values are dropped at record time because JSON
// cannot represent them.
type Field struct {
	Key string
	Val float64
}

// F builds a float-valued field.
func F(key string, v float64) Field { return Field{Key: key, Val: v} }

// FI builds an integer-valued field.
func FI(key string, v int64) Field { return Field{Key: key, Val: float64(v)} }

// ProbeRef is a named handle into the event collector. It is a value type
// with no state, so Probe(name) in an inner loop allocates nothing.
type ProbeRef struct {
	name string
}

// Probe returns a handle for emitting events under name. Names follow the
// metric convention ("pkg.event", lint-enforced): linalg.lanczos,
// maxflow.dinic, pebble.simulate.
func Probe(name string) ProbeRef { return ProbeRef{name: name} }

// Iter records one per-iteration event. With the collector stopped it is
// a single atomic load and return.
func (p ProbeRef) Iter(iter int64, fields ...Field) {
	if !probes.on.Load() {
		return
	}
	recordProbeEvent(nil, p.name, iter, fields)
}

// IterCtx records one per-iteration event attributed to ctx's scope: the
// buffered event carries the scope path and correlation ID, WriteEvents
// renders them, and the scope chain's event counters tick. With no scope
// on ctx it behaves exactly like Iter.
func (p ProbeRef) IterCtx(ctx context.Context, iter int64, fields ...Field) {
	if !probes.on.Load() {
		return
	}
	recordProbeEvent(FromContext(ctx), p.name, iter, fields)
}

// ProbeEvent is one buffered event. TNS is nanoseconds since StartEvents.
// Scope and ScopeID are empty on unattributed events.
type ProbeEvent struct {
	Probe   string
	Iter    int64
	TNS     int64
	Scope   string
	ScopeID string
	Fields  []Field
}

var probes struct {
	on atomic.Bool

	mu      sync.Mutex
	start   time.Time
	events  []ProbeEvent
	dropped int64
}

// StartEvents begins buffering probe events (idempotent).
func StartEvents() {
	probes.mu.Lock()
	if probes.start.IsZero() {
		probes.start = Now()
	}
	probes.mu.Unlock()
	probes.on.Store(true)
}

// StopEvents stops buffering. Already-buffered events stay available to
// WriteEvents until ResetEvents.
func StopEvents() { probes.on.Store(false) }

// EventsEnabled reports whether probe events are being collected. Call
// sites use it to skip field computation entirely when probes are off.
func EventsEnabled() bool { return probes.on.Load() }

// ResetEvents drops all buffered events (tests, mainly).
func ResetEvents() {
	probes.mu.Lock()
	probes.events = nil
	probes.start = time.Time{}
	probes.dropped = 0
	probes.mu.Unlock()
}

// EventStats reports the collector's buffered and dropped event counts.
func EventStats() (buffered int, dropped int64) {
	probes.mu.Lock()
	defer probes.mu.Unlock()
	return len(probes.events), probes.dropped
}

func recordProbeEvent(sc *Scope, name string, iter int64, fields []Field) {
	now := Now()
	kept := make([]Field, 0, len(fields))
	for _, f := range fields {
		if math.IsNaN(f.Val) || math.IsInf(f.Val, 0) {
			continue
		}
		kept = append(kept, f)
	}
	ev := ProbeEvent{Probe: name, Iter: iter, Fields: kept}
	if sc != nil {
		ev.Scope = sc.path
		ev.ScopeID = sc.id
		for c := sc; c != nil; c = c.parent {
			c.events.Add(1)
		}
	}
	probes.mu.Lock()
	if len(probes.events) >= maxProbeEvents {
		probes.dropped++
		probes.mu.Unlock()
		return
	}
	start := probes.start
	if start.IsZero() {
		// StartEvents always sets start before flipping on; this is only
		// reachable if a racing ResetEvents cleared it. Anchor at now.
		probes.start = now
		start = now
	}
	ev.TNS = now.Sub(start).Nanoseconds()
	probes.events = append(probes.events, ev)
	probes.mu.Unlock()
}

// WriteEvents serializes the buffered events as CRC-framed JSONL in the
// persist journal format, in record order. Fields render in the order the
// call site passed them, with strconv's shortest-round-trip float format,
// so output is deterministic for golden tests.
func WriteEvents(w io.Writer) error {
	probes.mu.Lock()
	events := append([]ProbeEvent(nil), probes.events...)
	dropped := probes.dropped
	probes.mu.Unlock()
	if dropped > 0 {
		Logf("events: %d probe events dropped past the %d-event buffer", dropped, maxProbeEvents)
	}
	var b strings.Builder
	for i := range events {
		b.Reset()
		e := &events[i]
		b.WriteString(`{"probe":`)
		b.WriteString(quoteJSON(e.Probe))
		b.WriteString(`,"iter":`)
		b.WriteString(strconv.FormatInt(e.Iter, 10))
		b.WriteString(`,"t_ns":`)
		b.WriteString(strconv.FormatInt(e.TNS, 10))
		if e.Scope != "" {
			// Attributed events carry their scope; unattributed ones render
			// byte-identically to the pre-scope format, so old goldens and
			// `obsreport convergence` keep working unchanged.
			b.WriteString(`,"scope":`)
			b.WriteString(quoteJSON(e.Scope))
			b.WriteString(`,"scope_id":`)
			b.WriteString(quoteJSON(e.ScopeID))
		}
		b.WriteString(`,"f":{`)
		for j, f := range e.Fields {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteJSON(f.Key))
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(f.Val, 'g', -1, 64))
		}
		b.WriteString("}}")
		frame, err := persist.FrameRecord([]byte(b.String()))
		if err != nil {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// DumpEvents writes the buffered event log to path atomically (temp file
// + rename), so an interrupt landing mid-flush cannot leave a torn file:
// the first SIGINT's flush is CRC-clean end to end.
func DumpEvents(path string) error {
	return persist.WriteTo(path, WriteEvents)
}
