package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Scopes bring per-task attribution to the process-wide registry. A Scope
// bundles its own Registry, a correlation ID, and span/event counters, and
// rides a context.Context (WithScope/FromContext) so the instrumented
// packages can attribute emission to "the experiment this solve belongs
// to" without new parameters. Emission through a scope dual-writes: the
// value lands in the scope's registry, every ancestor's registry, and the
// default registry, so per-scope counters always sum to (never replace)
// the process totals that /metrics, -metrics-out and the existing golden
// tests observe. A nil *Scope is valid everywhere and routes straight to
// the default registry, which is what FromContext returns on an unscoped
// context — the ctx-aware package helpers (AddCtx, IncCtx, ...) therefore
// behave exactly like their global counterparts until someone installs a
// scope.
//
// Like the rest of the package, scope emission is gated on the one global
// enabled flag: a disabled process pays a single atomic load per call no
// matter how many scopes are live.

// maxRetainedScopes bounds the closed-scope table kept for dump sections.
// A sweep closes one scope per experiment, so the cap is generous; past
// it, closed scopes are counted in scopesDropped rather than retained.
const maxRetainedScopes = 1024

// Scope is one live unit of attributed work (an experiment, a request).
type Scope struct {
	id     string
	name   string
	path   string // "/"-joined ancestry, e.g. "sweep/fig7"
	parent *Scope
	reg    *Registry
	start  time.Time

	openSpans atomic.Int64
	events    atomic.Int64
	closed    atomic.Bool
}

var scopeTab struct {
	mu       sync.Mutex
	seq      uint64
	live     map[string]*Scope
	retained []ScopeSection
	dropped  int64
}

// NewScope opens a root scope and registers it in the live-scope table
// (served by /tasks). Close it when the unit of work ends.
func NewScope(name string) *Scope {
	return newScope(name, nil)
}

// Child opens a sub-scope whose emission also rolls up into s. On a nil
// receiver it opens a root scope, so callers can stay nil-oblivious.
func (s *Scope) Child(name string) *Scope {
	return newScope(name, s)
}

func newScope(name string, parent *Scope) *Scope {
	sc := &Scope{name: name, path: name, parent: parent, reg: NewRegistry(), start: Now()}
	if parent != nil {
		sc.path = parent.path + "/" + name
	}
	scopeTab.mu.Lock()
	scopeTab.seq++
	sc.id = fmt.Sprintf("s%06x", scopeTab.seq)
	if scopeTab.live == nil {
		scopeTab.live = map[string]*Scope{}
	}
	scopeTab.live[sc.id] = sc
	scopeTab.mu.Unlock()
	return sc
}

// Close removes the scope from the live table and retains its final
// section for the metrics dump. Idempotent; safe on nil.
func (s *Scope) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	sec := s.section()
	scopeTab.mu.Lock()
	delete(scopeTab.live, s.id)
	if len(scopeTab.retained) < maxRetainedScopes {
		scopeTab.retained = append(scopeTab.retained, sec)
	} else {
		scopeTab.dropped++
	}
	scopeTab.mu.Unlock()
}

// ResetScopes drops every live and retained scope and rewinds the ID
// sequence (tests, mainly — live correlation IDs stay unique per process).
func ResetScopes() {
	scopeTab.mu.Lock()
	scopeTab.seq = 0
	scopeTab.live = map[string]*Scope{}
	scopeTab.retained = nil
	scopeTab.dropped = 0
	scopeTab.mu.Unlock()
}

// ID returns the scope's correlation ID ("" on nil).
func (s *Scope) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Name returns the scope's leaf name ("" on nil).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the "/"-joined ancestry path ("" on nil).
func (s *Scope) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Registry returns the scope's own registry (the default registry on nil),
// for reading attributed values back: scope.Counter et al delegate here.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return defaultR
	}
	return s.reg
}

// Counter reads one attributed counter (the default registry's on nil).
func (s *Scope) Counter(name string) int64 { return s.Registry().Counter(name) }

// Elapsed is the time since the scope opened (0 on nil).
func (s *Scope) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return Since(s.start)
}

// Digest returns a stable hex digest of the scope's attributed metrics —
// the per-experiment fingerprint the sweep manifest records. JSON
// marshalling sorts map keys, so equal snapshots digest equally.
func (s *Scope) Digest() string {
	b, err := json.Marshal(s.Registry().Snapshot())
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// scope emission: dual-write the scope chain plus the default registry,
// all behind the same single enabled load as the global helpers.

// Add increments an attributed counter (and the process total).
func (s *Scope) Add(name string, delta int64) {
	if !enabled.Load() {
		return
	}
	for c := s; c != nil; c = c.parent {
		c.reg.Add(name, delta)
	}
	defaultR.Add(name, delta)
}

// Inc increments an attributed counter by one.
func (s *Scope) Inc(name string) { s.Add(name, 1) }

// SetGauge records an attributed gauge (latest-value semantics everywhere).
func (s *Scope) SetGauge(name string, v float64) {
	if !enabled.Load() {
		return
	}
	for c := s; c != nil; c = c.parent {
		c.reg.SetGauge(name, v)
	}
	defaultR.SetGauge(name, v)
}

// Observe folds a duration into an attributed timer.
func (s *Scope) Observe(name string, d time.Duration) {
	if !enabled.Load() {
		return
	}
	for c := s; c != nil; c = c.parent {
		c.reg.Observe(name, d)
	}
	defaultR.Observe(name, d)
}

// Time starts a stopwatch whose stop function feeds an attributed timer.
func (s *Scope) Time(name string) func() {
	if !enabled.Load() {
		return func() {}
	}
	start := Now()
	return func() { s.Observe(name, Since(start)) }
}

// ObserveHist folds a value into an attributed histogram.
func (s *Scope) ObserveHist(name string, v int64) {
	if !enabled.Load() {
		return
	}
	for c := s; c != nil; c = c.parent {
		c.reg.ObserveHist(name, v)
	}
	defaultR.ObserveHist(name, v)
}

// ObserveHistDuration folds a duration (as ns) into an attributed histogram.
func (s *Scope) ObserveHistDuration(name string, d time.Duration) {
	s.ObserveHist(name, d.Nanoseconds())
}

// TimeHist starts a stopwatch whose stop function feeds an attributed
// histogram in nanoseconds.
func (s *Scope) TimeHist(name string) func() {
	if !enabled.Load() {
		return func() {}
	}
	start := Now()
	return func() { s.ObserveHist(name, Since(start).Nanoseconds()) }
}

// scopeKey carries a *Scope in a context.Context.
type scopeKey struct{}

// WithScope returns a context carrying s; solves derived from it attribute
// their telemetry to s through the ctx-aware helpers.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeKey{}, s)
}

// FromContext returns the scope carried by ctx, or nil — and nil is a
// first-class scope that routes to the default registry, so callers never
// need to branch.
func FromContext(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// ctx-aware package helpers: resolve the scope from ctx first, fall back
// to the default registry (nil scope). These are what the instrumented
// packages call (lint rule scoped-obs); the unscoped helpers remain for
// CLI wiring and un-instrumented leaf packages.

// AddCtx increments a counter attributed to ctx's scope.
func AddCtx(ctx context.Context, name string, delta int64) { FromContext(ctx).Add(name, delta) }

// IncCtx increments a counter attributed to ctx's scope by one.
func IncCtx(ctx context.Context, name string) { FromContext(ctx).Add(name, 1) }

// SetGaugeCtx records a gauge attributed to ctx's scope.
func SetGaugeCtx(ctx context.Context, name string, v float64) { FromContext(ctx).SetGauge(name, v) }

// ObserveCtx folds a duration into a timer attributed to ctx's scope.
func ObserveCtx(ctx context.Context, name string, d time.Duration) {
	FromContext(ctx).Observe(name, d)
}

// TimeCtx starts a stopwatch feeding a timer attributed to ctx's scope.
func TimeCtx(ctx context.Context, name string) func() { return FromContext(ctx).Time(name) }

// ObserveHistCtx folds a value into a histogram attributed to ctx's scope.
func ObserveHistCtx(ctx context.Context, name string, v int64) {
	FromContext(ctx).ObserveHist(name, v)
}

// ObserveHistDurationCtx folds a duration into a histogram attributed to
// ctx's scope.
func ObserveHistDurationCtx(ctx context.Context, name string, d time.Duration) {
	FromContext(ctx).ObserveHist(name, d.Nanoseconds())
}

// TimeHistCtx starts a stopwatch feeding a histogram attributed to ctx's
// scope.
func TimeHistCtx(ctx context.Context, name string) func() { return FromContext(ctx).TimeHist(name) }

// ScopeSection is one scope's contribution to the metrics dump: identity,
// lineage, wall time, and the attributed snapshot.
type ScopeSection struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Path     string   `json:"path"`
	ParentID string   `json:"parent_id,omitempty"`
	WallNS   int64    `json:"wall_ns"`
	Events   int64    `json:"events,omitempty"`
	Metrics  Snapshot `json:"metrics"`
}

func (s *Scope) section() ScopeSection {
	sec := ScopeSection{
		ID:      s.id,
		Name:    s.name,
		Path:    s.path,
		WallNS:  Since(s.start).Nanoseconds(),
		Events:  s.events.Load(),
		Metrics: s.reg.Snapshot(),
	}
	if s.parent != nil {
		sec.ParentID = s.parent.id
	}
	return sec
}

// ScopeSections returns the per-scope sections for the metrics dump:
// every closed (retained) scope in close order, then the still-live ones,
// all sorted by correlation ID so output is deterministic.
func ScopeSections() []ScopeSection {
	scopeTab.mu.Lock()
	secs := append([]ScopeSection(nil), scopeTab.retained...)
	live := make([]*Scope, 0, len(scopeTab.live))
	for _, s := range scopeTab.live {
		live = append(live, s)
	}
	scopeTab.mu.Unlock()
	for _, s := range live {
		secs = append(secs, s.section())
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].ID < secs[j].ID })
	return secs
}

// TaskCounter is one top-counter entry in a TaskInfo, ordered (unlike a
// map) so /tasks output is stable.
type TaskCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TaskInfo is one live scope as served by /tasks.
type TaskInfo struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	Path        string        `json:"path"`
	ParentID    string        `json:"parent_id,omitempty"`
	ElapsedNS   int64         `json:"elapsed_ns"`
	OpenSpans   int64         `json:"open_spans"`
	Events      int64         `json:"events"`
	TopCounters []TaskCounter `json:"top_counters"`
}

// taskTopCounters bounds how many counters a /tasks row carries.
const taskTopCounters = 5

// Tasks snapshots the live scopes for /tasks, sorted by correlation ID.
func Tasks() []TaskInfo {
	scopeTab.mu.Lock()
	live := make([]*Scope, 0, len(scopeTab.live))
	for _, s := range scopeTab.live {
		live = append(live, s)
	}
	scopeTab.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	tasks := make([]TaskInfo, 0, len(live))
	for _, s := range live {
		ti := TaskInfo{
			ID:          s.id,
			Name:        s.name,
			Path:        s.path,
			ElapsedNS:   Since(s.start).Nanoseconds(),
			OpenSpans:   s.openSpans.Load(),
			Events:      s.events.Load(),
			TopCounters: []TaskCounter{},
		}
		if s.parent != nil {
			ti.ParentID = s.parent.id
		}
		snap := s.reg.Snapshot()
		top := make([]TaskCounter, 0, len(snap.Counters))
		for k, v := range snap.Counters {
			top = append(top, TaskCounter{Name: k, Value: v})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].Value != top[j].Value {
				return top[i].Value > top[j].Value
			}
			return top[i].Name < top[j].Name
		})
		if len(top) > taskTopCounters {
			top = top[:taskTopCounters]
		}
		ti.TopCounters = top
		tasks = append(tasks, ti)
	}
	return tasks
}
