package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesTimers(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 3)
	r.Inc("c")
	r.SetGauge("g", 2.5)
	r.Observe("t", 10*time.Millisecond)
	r.Observe("t", 30*time.Millisecond)

	if got := r.Counter("c"); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := r.Gauge("g"); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	s := r.Snapshot()
	ts := s.Timers["t"]
	if ts.Count != 2 || ts.TotalNS != int64(40*time.Millisecond) {
		t.Errorf("timer = %+v", ts)
	}
	if ts.MinNS != int64(10*time.Millisecond) || ts.MaxNS != int64(30*time.Millisecond) {
		t.Errorf("timer min/max = %+v", ts)
	}
	if ts.AvgNS != int64(20*time.Millisecond) {
		t.Errorf("timer avg = %d", ts.AvgNS)
	}
}

func TestRegistryDropsNonFiniteGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("ok", 1)
	r.SetGauge("ok", math.NaN())
	r.SetGauge("ok", math.Inf(1))
	if got := r.Gauge("ok"); got != 1 {
		t.Errorf("gauge = %g, want last finite value 1", got)
	}
	// The JSON emitter must never see a value it cannot encode.
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; its
// real assertion is the -race run (`make test-race`), the count check is a
// bonus.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc("shared")
				r.Add("shared", 1)
				r.SetGauge("latest", float64(i))
				r.Observe("dur", time.Duration(i))
				r.Inc("own-" + string(rune('a'+w)))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared"); got != 2*workers*perWorker {
		t.Errorf("shared = %d, want %d", got, 2*workers*perWorker)
	}
	if s := r.Snapshot(); s.Timers["dur"].Count != workers*perWorker {
		t.Errorf("timer count = %d", s.Timers["dur"].Count)
	}
}

// TestPackageHelpersConcurrentWhileToggling exercises the global enable
// gate under concurrent metric traffic — the exact interleaving the race
// detector needs to certify.
func TestPackageHelpersConcurrentWhileToggling(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Inc("global")
				Observe("gdur", time.Microsecond)
				SetGauge("gg", 1)
				stop := Time("stopwatch")
				stop()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Enable(i%2 == 0)
		}
	}()
	wg.Wait()
	// The test's real assertion is that the race detector stays quiet; the
	// recorded totals depend on toggle timing. One guaranteed-enabled
	// increment checks the registry still works after the churn.
	Enable(true)
	Inc("global")
	if got := Default().Counter("global"); got == 0 {
		t.Error("no global increments recorded")
	}
}

func TestDisabledHelpersAreInert(t *testing.T) {
	Reset()
	Enable(false)
	Inc("never")
	Observe("never", time.Second)
	SetGauge("never", 1)
	Time("never")()
	s := Default().Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers) != 0 {
		t.Errorf("disabled helpers recorded metrics: %+v", s)
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Add("linalg.matvecs", 42)
	r.SetGauge("wall_seconds", 1.5)
	r.Observe("core.boundk", 5*time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if s.Counters["linalg.matvecs"] != 42 || s.Gauges["wall_seconds"] != 1.5 {
		t.Errorf("round-trip = %+v", s)
	}
	if s.Timers["core.boundk"].Count != 1 {
		t.Errorf("timers = %+v", s.Timers)
	}
}

// TestTimerMinSeededByFirstObserve pins the first-observation edge: the
// zero value of timer.min must never leak into the stats as a fake 0ns
// minimum — the first Observe seeds it, later ones only lower it.
func TestTimerMinSeededByFirstObserve(t *testing.T) {
	r := NewRegistry()
	r.Observe("t", 5*time.Millisecond)
	if st := r.Snapshot().Timers["t"]; st.MinNS != int64(5*time.Millisecond) {
		t.Fatalf("first observe min = %dns, want 5ms (zero-value min leaked)", st.MinNS)
	}
	r.Observe("t", 10*time.Millisecond) // larger: min must not move
	if st := r.Snapshot().Timers["t"]; st.MinNS != int64(5*time.Millisecond) {
		t.Errorf("min after larger observe = %dns, want 5ms", st.MinNS)
	}
	r.Observe("t", 2*time.Millisecond) // smaller: min must follow
	if st := r.Snapshot().Timers["t"]; st.MinNS != int64(2*time.Millisecond) {
		t.Errorf("min after smaller observe = %dns, want 2ms", st.MinNS)
	}
}

// TestSnapshotOmitsNeverObservedTimer: a timer that exists but was never
// observed must be omitted from exports instead of emitting garbage
// (count=0 with min=max=avg=0 reads like a real measurement).
func TestSnapshotOmitsNeverObservedTimer(t *testing.T) {
	r := NewRegistry()
	r.timer("ghost") // registered, never observed
	r.Observe("real", time.Millisecond)
	s := r.Snapshot()
	if _, ok := s.Timers["ghost"]; ok {
		t.Error("never-observed timer leaked into the snapshot")
	}
	if s.Timers["real"].Count != 1 {
		t.Errorf("timers = %+v", s.Timers)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ghost") {
		t.Errorf("JSON export contains never-observed timer:\n%s", buf.String())
	}
}

func TestWriteTextSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Add("b.counter", 2)
	r.Add("a.counter", 1)
	r.SetGauge("m.gauge", 3)
	r.Observe("z.timer", time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a.counter", "b.counter", "m.gauge", "z.timer", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a.counter") > strings.Index(out, "b.counter") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}
