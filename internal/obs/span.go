package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The verbose sink receives one line per ended span and per Logf event.
// It is independent of the metrics registry: -v enables both, but a caller
// may enable either alone.
var (
	verboseOn atomic.Bool
	verboseMu sync.Mutex
	verboseW  io.Writer
)

// SetVerbose directs span/event lines to w; nil silences them.
func SetVerbose(w io.Writer) {
	verboseMu.Lock()
	verboseW = w
	verboseMu.Unlock()
	verboseOn.Store(w != nil)
}

// Verbose reports whether a verbose sink is installed.
func Verbose() bool { return verboseOn.Load() }

// Logf writes one event line to the verbose sink, if any.
func Logf(format string, args ...interface{}) {
	if !verboseOn.Load() {
		return
	}
	verboseMu.Lock()
	defer verboseMu.Unlock()
	if verboseW == nil {
		return
	}
	fmt.Fprintf(verboseW, "[obs] "+format+"\n", args...)
}

// Span is one timed phase. Spans nest by name (Child joins with "/"); a
// nil *Span is valid and inert, which is what StartSpan returns when the
// registry, the verbose sink and the trace collector are all off — call
// sites need no guards.
type Span struct {
	name     string
	start    time.Time
	keys     []string
	vals     []string
	traceID  uint64 // 0 when the trace collector is off
	parentID uint64
	gid      int64
}

// StartSpan opens a span. On End the span's wall time lands in the timer
// "span.<name>", the trace collector buffers it when tracing is on, and,
// when a verbose sink is set, one line is logged with the recorded fields.
func StartSpan(name string) *Span {
	if !enabled.Load() && !verboseOn.Load() && !trackingSpans() {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	if trackingSpans() {
		s.gid = goid()
		s.traceID = beginTraceSpan(s.name, s.start, s.gid)
	}
	return s
}

// Child opens a nested span named "<parent>/<name>".
func (s *Span) Child(name string) *Span {
	if s == nil {
		return StartSpan(name)
	}
	c := &Span{name: s.name + "/" + name, start: time.Now(), parentID: s.traceID}
	if trackingSpans() {
		c.gid = goid()
		c.traceID = beginTraceSpan(c.name, c.start, c.gid)
	}
	return c
}

// SetInt records an integer field.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, strconv.FormatInt(v, 10))
}

// SetFloat records a float field.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, strconv.FormatFloat(v, 'g', 6, 64))
}

// SetStr records a string field.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, v)
}

// Elapsed returns the time since the span started (0 on a nil span).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span, records its duration, emits the verbose line, and
// returns the duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	end := time.Now()
	d := end.Sub(s.start)
	if s.traceID != 0 {
		endTraceSpan(s, end)
	}
	if enabled.Load() {
		defaultR.Observe("span."+s.name, d)
	}
	if verboseOn.Load() {
		var b strings.Builder
		fmt.Fprintf(&b, "%-36s %12v", s.name, d.Round(time.Microsecond))
		for i, k := range s.keys {
			b.WriteString(" ")
			b.WriteString(k)
			b.WriteString("=")
			b.WriteString(s.vals[i])
		}
		Logf("%s", b.String())
	}
	return d
}
