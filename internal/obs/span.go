package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"time"
)

// Span is one timed phase. Spans nest by name (Child joins with "/"); a
// nil *Span is valid and inert, which is what StartSpan returns when the
// registry, the log sink and the trace collector are all off — call
// sites need no guards.
type Span struct {
	name     string
	start    time.Time
	keys     []string
	vals     []string
	scope    *Scope // nil when the span is unattributed
	traceID  uint64 // 0 when the trace collector is off
	parentID uint64
	gid      int64
}

// StartSpan opens a span. On End the span's wall time lands in the timer
// "span.<name>", the trace collector buffers it when tracing is on, and,
// when a log sink is set, one record is emitted with the recorded fields.
func StartSpan(name string) *Span {
	if !enabled.Load() && !logOn.Load() && !trackingSpans() {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	if trackingSpans() {
		s.gid = goid()
		s.traceID = beginTraceSpan(s.name, s.start, s.gid)
	}
	return s
}

// StartSpanCtx opens a span attributed to ctx's scope: on End the wall
// time also lands in the scope chain's registries, the scope's open-span
// gauge tracks it, and the log record carries the correlation ID. With no
// scope on ctx it behaves exactly like StartSpan.
func StartSpanCtx(ctx context.Context, name string) *Span {
	s := StartSpan(name)
	if s == nil {
		return nil
	}
	if sc := FromContext(ctx); sc != nil {
		s.scope = sc
		sc.openSpans.Add(1)
	}
	return s
}

// Child opens a nested span named "<parent>/<name>", inheriting the
// parent's scope attribution.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return StartSpan(name)
	}
	c := &Span{name: s.name + "/" + name, start: time.Now(), scope: s.scope, parentID: s.traceID}
	if c.scope != nil {
		c.scope.openSpans.Add(1)
	}
	if trackingSpans() {
		c.gid = goid()
		c.traceID = beginTraceSpan(c.name, c.start, c.gid)
	}
	return c
}

// SetInt records an integer field.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, strconv.FormatInt(v, 10))
}

// SetFloat records a float field.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, strconv.FormatFloat(v, 'g', 6, 64))
}

// SetStr records a string field.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.keys = append(s.keys, key)
	s.vals = append(s.vals, v)
}

// Elapsed returns the time since the span started (0 on a nil span).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span, records its duration (into the scope chain when
// attributed, and always into the default registry), emits the log
// record, and returns the duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	end := time.Now()
	d := end.Sub(s.start)
	if s.traceID != 0 {
		endTraceSpan(s, end)
	}
	if s.scope != nil {
		s.scope.openSpans.Add(-1)
	}
	if enabled.Load() {
		for c := s.scope; c != nil; c = c.parent {
			c.reg.Observe("span."+s.name, d)
		}
		defaultR.Observe("span."+s.name, d)
	}
	if logOn.Load() {
		attrs := make([]slog.Attr, 0, len(s.keys)+2)
		for i, k := range s.keys {
			attrs = append(attrs, slog.String(k, s.vals[i]))
		}
		if s.scope != nil {
			attrs = append(attrs, slog.String("scope", s.scope.path), slog.String("scope_id", s.scope.id))
		}
		logRecord(fmt.Sprintf("%-36s %12v", s.name, d.Round(time.Microsecond)), attrs)
	}
	return d
}
