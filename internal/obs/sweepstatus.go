package obs

import "sync/atomic"

// SweepStatus is a long-running sweep's self-reported progress, published
// through SetSweepStatus so /progress can show it. The obs package defines
// the type (rather than internal/experiments) because the debug server
// lives here and experiments already depends on obs; the provider hook
// keeps the dependency pointing one way.
type SweepStatus struct {
	Total            int    `json:"total"`             // experiments selected for this run
	Done             int    `json:"done"`              // completed (ok or failed)
	Failed           int    `json:"failed"`            // subset of Done that failed
	Skipped          int    `json:"skipped"`           // resume/selection skips
	Current          string `json:"current,omitempty"` // experiment running now
	CurrentElapsedNS int64  `json:"current_elapsed_ns,omitempty"`
	ETAKnown         bool   `json:"eta_known"`        // false until any wall-time history exists
	ETANS            int64  `json:"eta_ns,omitempty"` // estimated remaining time, valid when ETAKnown
}

// sweepStatusFn holds a func() (SweepStatus, bool); a stored typed nil
// means no sweep is publishing (atomic.Value cannot hold untyped nil).
var sweepStatusFn atomic.Value

// SetSweepStatus installs (or, with nil, removes) the provider /progress
// polls for sweep progress. The provider must be safe to call from any
// goroutine at any time while installed.
func SetSweepStatus(fn func() (SweepStatus, bool)) {
	if fn == nil {
		sweepStatusFn.Store((func() (SweepStatus, bool))(nil))
		return
	}
	sweepStatusFn.Store(fn)
}

// CurrentSweepStatus reports the active sweep's progress, if a provider
// is installed and has something to report.
func CurrentSweepStatus() (SweepStatus, bool) {
	if fn, ok := sweepStatusFn.Load().(func() (SweepStatus, bool)); ok && fn != nil {
		return fn()
	}
	return SweepStatus{}, false
}
