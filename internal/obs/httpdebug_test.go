package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"linalg.matvecs":     "linalg_matvecs",
		"span.core/eigens":   "span_core_eigens",
		"already_clean":      "already_clean",
		"9starts.with.digit": "_9starts_with_digit",
		"dash-and space":     "dash_and_space",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusFormat checks each metric family renders in the text
// exposition format: a TYPE line, then samples whose names match the
// Prometheus charset and whose label syntax is well-formed.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Add("linalg.matvecs", 42)
	r.SetGauge("wall_seconds", 1.5)
	r.Observe("span.core", 40*time.Millisecond)
	for i := int64(1); i <= 100; i++ {
		r.ObserveHist("core.boundk_ns", i)
	}
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE linalg_matvecs counter\nlinalg_matvecs 42\n",
		"# TYPE wall_seconds gauge\nwall_seconds 1.5\n",
		"# TYPE span_core_ns summary\nspan_core_ns_sum 40000000\nspan_core_ns_count 1\n",
		"# TYPE core_boundk_ns histogram\n",
		"core_boundk_ns_bucket{le=\"2\"} 1\n",
		"core_boundk_ns_bucket{le=\"4\"} 3\n",
		"core_boundk_ns_bucket{le=\"64\"} 63\n",
		"core_boundk_ns_bucket{le=\"128\"} 100\n",
		"core_boundk_ns_bucket{le=\"+Inf\"} 100\n",
		"core_boundk_ns_sum 5050\ncore_boundk_ns_count 100\n",
		"# TYPE core_boundk_ns_p50 gauge\n",
		"# TYPE core_boundk_ns_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name value` or `name{labels} value`.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	Inc("debug.test.counter")
	ObserveHist("debug.test.lat_ns", 1500)

	stop, addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"debug_test_counter 1", "# TYPE debug_test_lat_ns histogram", "debug_test_lat_ns_bucket{le=\"+Inf\"} 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	sp := StartSpan("live.phase")
	code, body = get("/progress")
	sp.End()
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var snap progressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not valid JSON: %v\n%s", err, body)
	}
	if !snap.MetricsEnabled {
		t.Error("/progress reports metrics disabled")
	}
	found := false
	for _, o := range snap.OpenSpans {
		if o.Name == "live.phase" {
			found = true
			if o.Goroutine <= 0 {
				t.Errorf("open span missing goroutine id: %+v", o)
			}
		}
	}
	if !found {
		t.Errorf("/progress missing open span live.phase: %s", body)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/ status = %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}

	// Stop must be idempotent and actually shut the listener down.
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after stop")
	}
}

// The /metrics handler has to work through an httptest recorder too — the
// exact round-trip the satellite checklist names.
func TestMetricsHandlerHTTPTest(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	Add("rt.counter", 7)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	handleMetrics(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), fmt.Sprintf("rt_counter %d", 7)) {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestMetricsHistogramBucketsHTTPTest scrapes /metrics through httptest
// and checks the histogram exposition is internally consistent: bucket
// counts are cumulative (monotone non-decreasing in le order) and the
// +Inf bucket equals _count, with the p50/p90/p99 gauges present.
func TestMetricsHistogramBucketsHTTPTest(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	for i := int64(1); i <= 1000; i++ {
		ObserveHist("rt.lat_ns", i*i)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	handleMetrics(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()

	var last int64 = -1
	buckets := 0
	var infCount, count int64 = -1, -1
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "rt_lat_ns_bucket{le=\"+Inf\"} "):
			fmt.Sscanf(line, "rt_lat_ns_bucket{le=\"+Inf\"} %d", &infCount)
		case strings.HasPrefix(line, "rt_lat_ns_bucket{"):
			var c int64
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed bucket line %q", line)
			}
			fmt.Sscanf(fields[1], "%d", &c)
			if c < last {
				t.Errorf("bucket counts not cumulative: %q after %d", line, last)
			}
			last = c
			buckets++
		case strings.HasPrefix(line, "rt_lat_ns_count "):
			fmt.Sscanf(line, "rt_lat_ns_count %d", &count)
		}
	}
	if buckets < 5 {
		t.Errorf("only %d finite buckets exported", buckets)
	}
	if count != 1000 || infCount != count {
		t.Errorf("le=\"+Inf\" bucket %d != _count %d (want 1000)", infCount, count)
	}
	for _, q := range []string{"rt_lat_ns_p50 ", "rt_lat_ns_p90 ", "rt_lat_ns_p99 "} {
		if !strings.Contains(body, q) {
			t.Errorf("missing quantile gauge %q", q)
		}
	}
}

// TestProgressUnderSpanChurn hammers /progress while goroutines open and
// close spans — the race the open-span table exists to survive. Run with
// -race this is the satellite's concurrency check.
func TestProgressUnderSpanChurn(t *testing.T) {
	// No Reset() here: this test reads no counters, and a destructive global
	// reset would race with any parallel test emitting into the default
	// registry. The span churn below tolerates whatever state is live.
	Enable(true)
	defer Enable(false)
	SetSweepStatus(func() (SweepStatus, bool) {
		return SweepStatus{Total: 10, Done: 3, Current: "fig7_fft", ETAKnown: true, ETANS: 42}, true
	})
	defer SetSweepStatus(nil)
	stop, addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	done := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				sp := StartSpan("churn.phase")
				sp.Child("inner").End()
				sp.End()
			}
		}(g)
	}
	var gets sync.WaitGroup
	for g := 0; g < 4; g++ {
		gets.Add(1)
		go func() {
			defer gets.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get("http://" + addr + "/progress")
				if err != nil {
					t.Errorf("GET /progress: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var snap progressSnapshot
				if err := json.Unmarshal(body, &snap); err != nil {
					t.Errorf("/progress not valid JSON under churn: %v", err)
					return
				}
				if snap.Sweep == nil || snap.Sweep.Total != 10 || snap.Sweep.Current != "fig7_fft" {
					t.Errorf("/progress sweep status = %+v", snap.Sweep)
					return
				}
			}
		}()
	}
	gets.Wait()
	close(done)
	churn.Wait()
}
