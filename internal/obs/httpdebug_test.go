package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"linalg.matvecs":     "linalg_matvecs",
		"span.core/eigens":   "span_core_eigens",
		"already_clean":      "already_clean",
		"9starts.with.digit": "_9starts_with_digit",
		"dash-and space":     "dash_and_space",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusFormat checks each metric family renders in the text
// exposition format: a TYPE line, then samples whose names match the
// Prometheus charset and whose label syntax is well-formed.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Add("linalg.matvecs", 42)
	r.SetGauge("wall_seconds", 1.5)
	r.Observe("span.core", 40*time.Millisecond)
	for i := int64(1); i <= 100; i++ {
		r.ObserveHist("core.boundk_ns", i)
	}
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE linalg_matvecs counter\nlinalg_matvecs 42\n",
		"# TYPE wall_seconds gauge\nwall_seconds 1.5\n",
		"# TYPE span_core_ns summary\nspan_core_ns_sum 40000000\nspan_core_ns_count 1\n",
		"# TYPE core_boundk_ns summary\n",
		"core_boundk_ns{quantile=\"0.5\"}",
		"core_boundk_ns_sum 5050\ncore_boundk_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name value` or `name{labels} value`.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	Inc("debug.test.counter")
	ObserveHist("debug.test.lat_ns", 1500)

	stop, addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"debug_test_counter 1", "# TYPE debug_test_lat_ns summary"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	sp := StartSpan("live.phase")
	code, body = get("/progress")
	sp.End()
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var snap progressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not valid JSON: %v\n%s", err, body)
	}
	if !snap.MetricsEnabled {
		t.Error("/progress reports metrics disabled")
	}
	found := false
	for _, o := range snap.OpenSpans {
		if o.Name == "live.phase" {
			found = true
			if o.Goroutine <= 0 {
				t.Errorf("open span missing goroutine id: %+v", o)
			}
		}
	}
	if !found {
		t.Errorf("/progress missing open span live.phase: %s", body)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/ status = %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}

	// Stop must be idempotent and actually shut the listener down.
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after stop")
	}
}

// The /metrics handler has to work through an httptest recorder too — the
// exact round-trip the satellite checklist names.
func TestMetricsHandlerHTTPTest(t *testing.T) {
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	Add("rt.counter", 7)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	handleMetrics(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), fmt.Sprintf("rt_counter %d", 7)) {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}
