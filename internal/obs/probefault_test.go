package obs_test

// Fault coverage for the probe event journal: a torn dump never
// publishes (atomic commit), and a torn tail that does reach disk — a
// crash racing a direct journal write — is tolerated by the read side.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/faultinject"
	"graphio/internal/obs"
	"graphio/internal/persist"
)

func seedEvents(t *testing.T, n int) {
	t.Helper()
	obs.ResetEvents()
	obs.StartEvents()
	for i := 0; i < n; i++ {
		obs.Probe("linalg.lanczos").Iter(int64(i), obs.FI("locked", int64(i)))
	}
	obs.StopEvents()
	t.Cleanup(obs.ResetEvents)
}

func TestDumpEventsTornWriteNeverPublishes(t *testing.T) {
	seedEvents(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	withFaultyFS(t, func(f persist.File) persist.File {
		return &faultinject.File{F: f, FailWriteAfter: 40}
	})
	if err := obs.DumpEvents(path); err == nil {
		t.Fatal("DumpEvents succeeded through a torn write")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("torn event dump was published")
	}
	assertNoTemps(t, dir)
}

// TestEventJournalTornTailToleratedOnRead cuts an event file mid-record
// with an injected write fault and checks the reader still replays every
// record before the tear — the torn-tail contract the convergence report
// relies on when inspecting a crashed run's events.
func TestEventJournalTornTailToleratedOnRead(t *testing.T) {
	seedEvents(t, 5)
	var full strings.Builder
	if err := obs.WriteEvents(&full); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(full.String(), "\n")
	if lines != 5 {
		t.Fatalf("seeded %d framed lines, want 5", lines)
	}

	path := filepath.Join(t.TempDir(), "events.jsonl")
	//lint:ignore persist-writes the test needs a raw file so faultinject can tear the final frame
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// The fault cuts the stream 10 bytes short: the final frame is torn.
	torn := &faultinject.File{F: f, FailWriteAfter: int64(full.Len() - 10)}
	if err := obs.WriteEvents(torn); err == nil {
		t.Fatal("WriteEvents succeeded through a torn write")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := persist.ReadJournal(path)
	if err != nil {
		t.Fatalf("reader rejected torn event journal: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records past the tear, want 4", len(recs))
	}
	for i, r := range recs {
		if !strings.Contains(string(r), `"probe":"linalg.lanczos"`) {
			t.Errorf("record %d unexpected payload: %s", i, r)
		}
	}
}
