package obs

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentScopesDisjointAttribution is the tentpole's concurrency
// contract, run under -race by the tier-1 gate: experiments running in
// parallel goroutines, each under its own scope, must produce disjoint,
// correctly attributed metric and probe snapshots while the default
// registry accumulates the process totals.
func TestConcurrentScopesDisjointAttribution(t *testing.T) {
	Reset()
	ResetScopes()
	ResetEvents()
	Enable(true)
	StartEvents()
	t.Cleanup(func() {
		StopEvents()
		Enable(false)
		ResetScopes()
		Reset()
	})

	root := NewScope("sweep")
	defer root.Close()
	const perScope = 500
	names := []string{"alpha", "beta"}
	scopes := make([]*Scope, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		sc := root.Child(name)
		scopes[i] = sc
		ctx := WithScope(context.Background(), sc)
		wg.Add(1)
		go func(name string, ctx context.Context) {
			defer wg.Done()
			for j := 0; j < perScope; j++ {
				IncCtx(ctx, "scopetest."+name+".total")
				IncCtx(ctx, "scopetest.shared.total")
				AddCtx(ctx, "scopetest.bytes", 2)
				ObserveHistCtx(ctx, "scopetest.size", int64(j))
				sp := StartSpanCtx(ctx, "scopetest.phase")
				sp.End()
				if j%100 == 0 {
					Probe("scopetest.sweep").IterCtx(ctx, int64(j), FI("k", int64(j)))
				}
			}
		}(name, ctx)
	}
	wg.Wait()

	for i, name := range names {
		sc := scopes[i]
		other := names[1-i]
		if n := sc.Counter("scopetest." + name + ".total"); n != perScope {
			t.Errorf("scope %s: own counter = %d, want %d", name, n, perScope)
		}
		if n := sc.Counter("scopetest." + other + ".total"); n != 0 {
			t.Errorf("scope %s: sees %d increments of %s's counter, want 0 (attribution leak)", name, n, other)
		}
		if n := sc.Counter("scopetest.shared.total"); n != perScope {
			t.Errorf("scope %s: shared counter = %d, want %d", name, n, perScope)
		}
		snap := sc.Registry().Snapshot()
		if h, ok := snap.Hists["scopetest.size"]; !ok || h.Count != perScope {
			t.Errorf("scope %s: hist count = %+v, want %d observations", name, h, perScope)
		}
		if sp := sc.openSpans.Load(); sp != 0 {
			t.Errorf("scope %s: %d spans still open after all ended", name, sp)
		}
		if ev := sc.events.Load(); ev != perScope/100 {
			t.Errorf("scope %s: events = %d, want %d", name, ev, perScope/100)
		}
	}
	// The per-scope counters roll up into the parent and the process totals.
	if n := root.Counter("scopetest.shared.total"); n != 2*perScope {
		t.Errorf("root scope shared counter = %d, want %d", n, 2*perScope)
	}
	sum := scopes[0].Counter("scopetest.shared.total") + scopes[1].Counter("scopetest.shared.total")
	if total := Default().Counter("scopetest.shared.total"); total != sum {
		t.Errorf("default registry shared = %d, want the per-scope sum %d", total, sum)
	}
	if total := Default().Counter("scopetest.bytes"); total != 2*perScope*2 {
		t.Errorf("default registry bytes = %d, want %d", total, 2*perScope*2)
	}

	// Probe events carry their emitting scope's identity.
	var buf bytes.Buffer
	if err := WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i, name := range names {
		tag := `"scope":"sweep/` + name + `"`
		if got := strings.Count(out, tag); got != perScope/100 {
			t.Errorf("events tagged %s = %d, want %d", tag, got, perScope/100)
		}
		if !strings.Contains(out, `"scope_id":"`+scopes[i].ID()+`"`) {
			t.Errorf("no event carries scope %s's correlation ID %s", name, scopes[i].ID())
		}
	}
}

// TestTasksEndpointGolden pins the /tasks response byte-for-byte: live
// scopes sorted by correlation ID, lineage, elapsed wall time under the
// injected clock, open spans, and the top counters.
func TestTasksEndpointGolden(t *testing.T) {
	Reset()
	ResetScopes()
	Enable(true)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	SetClock(func() time.Time { return t0 })
	t.Cleanup(func() {
		SetClock(nil)
		Enable(false)
		ResetScopes()
		Reset()
	})

	sweep := NewScope("sweep")
	defer sweep.Close()
	fig7 := sweep.Child("fig7")
	defer fig7.Close()
	ctx := WithScope(context.Background(), fig7)
	IncCtx(ctx, "demo.total")
	IncCtx(ctx, "demo.total")
	IncCtx(ctx, "demo.total")
	IncCtx(ctx, "demo.extra.total")
	sp := StartSpanCtx(ctx, "demo.phase")
	defer sp.End()

	rec := httptest.NewRecorder()
	handleTasks(rec, httptest.NewRequest("GET", "/tasks", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	const want = `{
  "tasks": [
    {
      "id": "s000001",
      "name": "sweep",
      "path": "sweep",
      "elapsed_ns": 0,
      "open_spans": 0,
      "events": 0,
      "top_counters": [
        {
          "name": "demo.total",
          "value": 3
        },
        {
          "name": "demo.extra.total",
          "value": 1
        }
      ]
    },
    {
      "id": "s000002",
      "name": "fig7",
      "path": "sweep/fig7",
      "parent_id": "s000001",
      "elapsed_ns": 0,
      "open_spans": 1,
      "events": 0,
      "top_counters": [
        {
          "name": "demo.total",
          "value": 3
        },
        {
          "name": "demo.extra.total",
          "value": 1
        }
      ]
    }
  ]
}
`
	if got := rec.Body.String(); got != want {
		t.Errorf("/tasks response mismatch\n got: %s\nwant: %s", got, want)
	}

	// Closing a scope removes it from /tasks.
	fig7.Close()
	rec = httptest.NewRecorder()
	handleTasks(rec, httptest.NewRequest("GET", "/tasks", nil))
	body := rec.Body.String()
	if strings.Contains(body, `"s000002"`) {
		t.Errorf("/tasks still lists the closed scope: %s", body)
	}
	if !strings.Contains(body, `"s000001"`) {
		t.Errorf("/tasks dropped the still-live sweep scope: %s", body)
	}
}

// TestScopeSectionsInDump checks that WriteJSON's scopes array carries
// closed scopes (retained) and live ones alike, and that an old-style
// consumer unmarshalling only the top-level Snapshot still parses it.
func TestScopeSectionsInDump(t *testing.T) {
	Reset()
	ResetScopes()
	Enable(true)
	t.Cleanup(func() {
		Enable(false)
		ResetScopes()
		Reset()
	})
	sc := NewScope("sweep")
	ctx := WithScope(context.Background(), sc.Child("fig7"))
	IncCtx(ctx, "demo.total")
	FromContext(ctx).Close()

	secs := ScopeSections()
	if len(secs) != 2 {
		t.Fatalf("ScopeSections() = %d sections, want closed fig7 + live sweep", len(secs))
	}
	if secs[0].Path != "sweep" || secs[1].Path != "sweep/fig7" {
		t.Errorf("section paths = %q, %q", secs[0].Path, secs[1].Path)
	}
	if secs[1].ParentID != secs[0].ID {
		t.Errorf("child ParentID = %q, want %q", secs[1].ParentID, secs[0].ID)
	}
	if secs[1].Metrics.Counters["demo.total"] != 1 {
		t.Errorf("closed child section counters = %v", secs[1].Metrics.Counters)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"scopes"`) {
		t.Error("WriteJSON dump has no scopes array")
	}
	sc.Close()
}
