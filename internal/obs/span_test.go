package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuf is a goroutine-safe bytes.Buffer for verbose-sink tests.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSpanNilWhenFullyDisabled(t *testing.T) {
	Reset()
	Enable(false)
	SetVerbose(nil)
	sp := StartSpan("noop")
	if sp != nil {
		t.Fatal("StartSpan should return nil when obs is fully off")
	}
	// Every method must be safe on the nil span.
	sp.SetInt("k", 1)
	sp.SetFloat("f", 1)
	sp.SetStr("s", "x")
	sp.Child("child").End()
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v", d)
	}
}

func TestSpanRecordsTimerAndFields(t *testing.T) {
	Reset()
	Enable(true)
	var buf lockedBuf
	SetVerbose(&buf)
	defer func() {
		SetVerbose(nil)
		Enable(false)
		Reset()
	}()

	sp := StartSpan("lanczos")
	sp.SetInt("restarts", 7)
	sp.SetFloat("residual", 1e-9)
	inner := sp.Child("tridiag")
	time.Sleep(time.Millisecond)
	inner.End()
	sp.End()

	s := Default().Snapshot()
	if s.Timers["span.lanczos"].Count != 1 {
		t.Errorf("span.lanczos timer missing: %+v", s.Timers)
	}
	st := s.Timers["span.lanczos/tridiag"]
	if st.Count != 1 || st.TotalNS < int64(time.Millisecond) {
		t.Errorf("nested span timer = %+v", st)
	}
	out := buf.String()
	for _, want := range []string{"lanczos", "restarts=7", "residual=1e-09", "lanczos/tridiag"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose log missing %q:\n%s", want, out)
		}
	}
}

func TestVerboseOnlySpanLogsWithoutRegistry(t *testing.T) {
	Reset()
	Enable(false)
	var buf lockedBuf
	SetVerbose(&buf)
	defer SetVerbose(nil)

	sp := StartSpan("phase")
	if sp == nil {
		t.Fatal("verbose sink alone should activate spans")
	}
	sp.End()
	Logf("event %d", 42)
	out := buf.String()
	if !strings.Contains(out, "phase") || !strings.Contains(out, "event 42") {
		t.Errorf("verbose output missing lines:\n%s", out)
	}
	if s := Default().Snapshot(); len(s.Timers) != 0 {
		t.Errorf("registry should stay empty when disabled, got %+v", s.Timers)
	}
}

func TestLogfDisabledIsSilent(t *testing.T) {
	SetVerbose(nil)
	Logf("should go nowhere %d", 1) // must not panic or block
}

func TestCLIBeginFinishWritesMetrics(t *testing.T) {
	Reset()
	defer func() {
		Enable(false)
		SetVerbose(nil)
		Reset()
	}()
	dir := t.TempDir()
	c := &CLI{MetricsOut: dir + "/m.json"}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("-metrics-out should enable collection")
	}
	Inc("some.counter")
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	b, err := readFile(c.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"some.counter", "wall_seconds", `"wall"`} {
		if !strings.Contains(b, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, b)
		}
	}
}
