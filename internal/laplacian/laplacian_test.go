package laplacian

import (
	"math"
	"math/rand"
	"testing"

	"graphio/internal/graph"
	"graphio/internal/linalg"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func randomDAG(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestOriginalLaplacianEntries(t *testing.T) {
	g := diamond(t)
	L := BuildDense(g, Original)
	// Undirected degrees: 0 has 2, 1 has 2, 2 has 2, 3 has 2.
	for v := 0; v < 4; v++ {
		if L.At(v, v) != 2 {
			t.Errorf("L[%d][%d] = %g, want 2", v, v, L.At(v, v))
		}
	}
	if L.At(0, 1) != -1 || L.At(1, 0) != -1 || L.At(0, 3) != 0 {
		t.Errorf("off-diagonals wrong: %g %g %g", L.At(0, 1), L.At(1, 0), L.At(0, 3))
	}
}

func TestNormalizedLaplacianEntries(t *testing.T) {
	g := diamond(t)
	L := BuildDense(g, OutDegreeNormalized)
	// d_out(0) = 2 so edges (0,1),(0,2) have weight 1/2; d_out(1) =
	// d_out(2) = 1 so edges into 3 have weight 1.
	if L.At(0, 1) != -0.5 || L.At(0, 2) != -0.5 {
		t.Errorf("weights from source: %g %g", L.At(0, 1), L.At(0, 2))
	}
	if L.At(1, 3) != -1 || L.At(3, 1) != -1 {
		t.Errorf("weights into sink: %g %g", L.At(1, 3), L.At(3, 1))
	}
	if L.At(0, 0) != 1 { // 1/2 + 1/2
		t.Errorf("diag(0) = %g, want 1", L.At(0, 0))
	}
	if L.At(3, 3) != 2 { // 1 + 1
		t.Errorf("diag(3) = %g, want 2", L.At(3, 3))
	}
	if L.At(1, 1) != 1.5 { // 1/2 (from 0) + 1 (to 3)
		t.Errorf("diag(1) = %g, want 1.5", L.At(1, 1))
	}
}

func TestCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(rng, 2+rng.Intn(30), 0.3)
		for _, kind := range []Kind{Original, OutDegreeNormalized} {
			sp, err := BuildCSR(g, kind)
			if err != nil {
				t.Fatal(err)
			}
			de := BuildDense(g, kind)
			got := sp.ToDense()
			for i := 0; i < g.N(); i++ {
				for j := 0; j < g.N(); j++ {
					if math.Abs(got.At(i, j)-de.At(i, j)) > 1e-14 {
						t.Fatalf("kind=%v entry (%d,%d): %g vs %g", kind, i, j, got.At(i, j), de.At(i, j))
					}
				}
			}
		}
	}
}

func TestQuadraticFormEqualsBoundaryWeight(t *testing.T) {
	// Paper Equation 3: for S ⊆ V with one-hot x, x^T L̃ x equals
	// Σ_{(u,v) ∈ ∂S} 1/d_out(u); and x^T L x = |∂S|.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(25), 0.35)
		inS := make([]bool, g.N())
		x := make([]float64, g.N())
		for v := range inS {
			if rng.Intn(2) == 0 {
				inS[v] = true
				x[v] = 1
			}
		}
		for _, kind := range []Kind{Original, OutDegreeNormalized} {
			sp, err := BuildCSR(g, kind)
			if err != nil {
				t.Fatal(err)
			}
			qf := QuadraticForm(sp, x)
			bw := BoundaryWeight(g, kind, inS)
			if math.Abs(qf-bw) > 1e-10*(1+bw) {
				t.Errorf("trial %d kind=%v: x^T L x = %g but boundary weight = %g", trial, kind, qf, bw)
			}
		}
	}
}

func TestLaplacianPSDAndKernel(t *testing.T) {
	// Both Laplacians are PSD with the all-ones vector in the kernel, and
	// the number of zero eigenvalues equals the number of weakly connected
	// components.
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(rng, 2+rng.Intn(20), 0.2)
		for _, kind := range []Kind{Original, OutDegreeNormalized} {
			L := BuildDense(g, kind)
			if !L.IsSymmetric(1e-12) {
				t.Fatalf("kind=%v: Laplacian not symmetric", kind)
			}
			vals, err := linalg.SymEigValues(L)
			if err != nil {
				t.Fatal(err)
			}
			if vals[0] < -1e-9 {
				t.Errorf("kind=%v: negative eigenvalue %g", kind, vals[0])
			}
			_, comps := g.UndirectedComponents()
			zeros := 0
			for _, v := range vals {
				if math.Abs(v) < 1e-8 {
					zeros++
				}
			}
			if zeros != comps {
				t.Errorf("kind=%v: %d zero eigenvalues but %d components (vals=%v)", kind, zeros, comps, vals)
			}
			// Ones vector in kernel.
			ones := make([]float64, g.N())
			out := make([]float64, g.N())
			for i := range ones {
				ones[i] = 1
			}
			L.MatVec(out, ones)
			if linalg.Norm2(out) > 1e-10 {
				t.Errorf("kind=%v: L·1 = %v, want 0", kind, out)
			}
		}
	}
}

func TestZeroValueIsNormalized(t *testing.T) {
	// The zero value must stay OutDegreeNormalized: zero-valued options
	// throughout the module document themselves as Theorem 4, and the
	// experiment harness reuses eigenvalues under that assumption.
	var k Kind
	if k != OutDegreeNormalized {
		t.Fatal("zero Kind is not OutDegreeNormalized")
	}
}

func TestKindString(t *testing.T) {
	if Original.String() != "original" || OutDegreeNormalized.String() != "out-degree-normalized" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	b := graph.NewBuilder(3, 0)
	b.AddVertices(3)
	g := b.MustBuild()
	sp, err := BuildCSR(g, OutDegreeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if sp.N != 3 {
		t.Fatalf("N=%d", sp.N)
	}
	vals, err := linalg.SymEigValues(sp.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Errorf("edgeless Laplacian should be zero, got %v", vals)
		}
	}
}
