// Package laplacian builds the graph Laplacians the spectral method works
// with (paper, Section 4.2).
//
// Given a directed computation graph G, the paper forms the weighted
// undirected graph G̃ by replacing each directed edge (u, v) with an
// undirected edge of weight 1/d_out(u); L̃ = D̃ − Ã is its Laplacian
// (Theorem 4). The plain Laplacian L of the unweighted, undirected version
// of G is used by the looser Theorem 5 variant, whose bound divides by the
// maximum out-degree instead.
package laplacian

import (
	"fmt"

	"graphio/internal/graph"
	"graphio/internal/linalg"
)

// Kind selects which Laplacian to build. The zero value is
// OutDegreeNormalized, so zero-valued options default to the paper's
// primary Theorem 4 bound.
type Kind int

const (
	// OutDegreeNormalized is L̃, with edge (u,v) weighted 1/d_out(u)
	// (Theorem 4). Deliberately the zero value.
	OutDegreeNormalized Kind = iota
	// Original is the unweighted undirected Laplacian L (Theorem 5).
	Original
)

func (k Kind) String() string {
	switch k {
	case Original:
		return "original"
	case OutDegreeNormalized:
		return "out-degree-normalized"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// edgeWeight returns the weight the undirected edge derived from the
// directed edge (u, v) carries under kind.
func edgeWeight(g *graph.Graph, kind Kind, u int) float64 {
	if kind == OutDegreeNormalized {
		return 1 / float64(g.OutDeg(u))
	}
	return 1
}

// BuildCSR assembles the selected Laplacian as a sparse CSR matrix.
func BuildCSR(g *graph.Graph, kind Kind) (*linalg.CSR, error) {
	n := g.N()
	entries := make([]linalg.Triplet, 0, 3*g.M()+n)
	for u := 0; u < n; u++ {
		// Ensure an explicit diagonal for every vertex, including isolated
		// ones, so the matrix is structurally complete.
		entries = append(entries, linalg.Triplet{Row: u, Col: u, Val: 0})
		for _, vi := range g.Succ(u) {
			v := int(vi)
			w := edgeWeight(g, kind, u)
			entries = append(entries,
				linalg.Triplet{Row: u, Col: u, Val: w},
				linalg.Triplet{Row: v, Col: v, Val: w},
				linalg.Triplet{Row: u, Col: v, Val: -w},
				linalg.Triplet{Row: v, Col: u, Val: -w},
			)
		}
	}
	return linalg.NewCSRFromTriplets(n, entries)
}

// BuildDense assembles the selected Laplacian as a dense matrix; intended
// for small graphs and tests.
func BuildDense(g *graph.Graph, kind Kind) *linalg.Dense {
	n := g.N()
	m := linalg.NewDense(n)
	for u := 0; u < n; u++ {
		for _, vi := range g.Succ(u) {
			v := int(vi)
			w := edgeWeight(g, kind, u)
			m.Add(u, u, w)
			m.Add(v, v, w)
			m.Add(u, v, -w)
			m.Add(v, u, -w)
		}
	}
	return m
}

// BoundaryWeight computes the weighted edge-boundary of the vertex subset S
// directly from the graph: Σ over edges (u,v) with exactly one endpoint in
// S of the edge's weight. For the normalized kind this is the quantity
// x^T L̃ x of Equation 3; for the original kind it is |∂S|. Used to verify
// the Laplacian identity and by the partitioner.
func BoundaryWeight(g *graph.Graph, kind Kind, inS []bool) float64 {
	var total float64
	for u := 0; u < g.N(); u++ {
		for _, vi := range g.Succ(u) {
			if inS[u] != inS[vi] {
				total += edgeWeight(g, kind, u)
			}
		}
	}
	return total
}

// QuadraticForm evaluates x^T A x for a CSR matrix, used in tests to check
// the Laplacian boundary identity.
func QuadraticForm(a *linalg.CSR, x []float64) float64 {
	tmp := make([]float64, a.N)
	a.MatVec(tmp, x)
	return linalg.Dot(x, tmp)
}
