package hongkung

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/redblue"
)

func TestChainOnePart(t *testing.T) {
	// A chain is dominated by its single source and has one sink: P(S)=1
	// for any S ≥ 1, so the bound is trivially 0.
	g := gen.Chain(8)
	p, err := MinPartition(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("chain P(1)=%d, want 1", p)
	}
	b, err := Bound(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("chain bound %g, want 0", b)
	}
}

func TestAntichainPartition(t *testing.T) {
	// n isolated vertices: each is its own source and sink; a part of k
	// vertices has dominator k and minimum k, so P(S) = ⌈n/S⌉.
	b := graph.NewBuilder(6, 0)
	b.AddVertices(6)
	g := b.MustBuild()
	for S, want := range map[int]int{1: 6, 2: 3, 3: 2, 6: 1} {
		p, err := MinPartition(g, S, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p != want {
			t.Errorf("antichain P(%d)=%d want %d", S, p, want)
		}
	}
}

func TestValidation(t *testing.T) {
	g := gen.Chain(3)
	if _, err := MinPartition(g, 0, Options{}); err == nil {
		t.Error("S=0 accepted")
	}
	if _, err := MinPartition(gen.FFT(3), 4, Options{}); err == nil {
		t.Error("32-vertex graph should exceed the 16-vertex limit")
	}
	if _, err := Bound(g, 0, Options{}); err == nil {
		t.Error("M=0 accepted")
	}
	empty := graph.NewBuilder(0, 0).MustBuild()
	if p, err := MinPartition(empty, 2, Options{}); err != nil || p != 0 {
		t.Errorf("empty graph: %d, %v", p, err)
	}
}

func TestDownSetCap(t *testing.T) {
	b := graph.NewBuilder(14, 0)
	b.AddVertices(14) // antichain: 2^14 down-sets
	if _, err := MinPartition(b.MustBuild(), 2, Options{MaxDownSets: 100}); err == nil {
		t.Error("down-set cap not enforced")
	}
}

func TestMinDominatorKnownCases(t *testing.T) {
	// Diamond 0→{1,2}→3: every path into {3} passes 0 (or 3, or the pair
	// {1,2}): min dominator of {3} is 1.
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	g := b.MustBuild()
	if d, err := minDominator(g, 1<<3); err != nil || d != 1 {
		t.Errorf("dominator({3}) = %d, %v, want 1", d, err)
	}
	// Part {1,2}: dominated by {0}.
	if d, err := minDominator(g, 1<<1|1<<2); err != nil || d != 1 {
		t.Errorf("dominator({1,2}) = %d, %v, want 1", d, err)
	}
}

func TestBoundBelowExactTotalIO(t *testing.T) {
	// Hong-Kung bounds *total* I/O: on tiny graphs it must sit below the
	// exact optimum of the trivial-counting red-blue game.
	rng := rand.New(rand.NewSource(191))
	graphs := []*graph.Graph{
		gen.InnerProduct(2),
		gen.InnerProduct(3),
		gen.FFT(1),
		gen.Grid2D(3, 3),
	}
	for trial := 0; trial < 6; trial++ {
		b := graph.NewBuilder(0, 0)
		n := 5 + rng.Intn(6)
		b.AddVertices(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					b.MustEdge(u, v)
				}
			}
		}
		graphs = append(graphs, b.MustBuild())
	}
	for _, g := range graphs {
		for _, M := range []int{2, 3} {
			if g.MaxInDeg() > M {
				continue
			}
			hk, err := Bound(g, M, Options{})
			if err != nil {
				t.Fatalf("%s M=%d: %v", g.Name(), M, err)
			}
			exact, err := redblue.Optimal(g, M, redblue.Options{CountTrivial: true})
			if err != nil {
				t.Fatalf("%s M=%d: %v", g.Name(), M, err)
			}
			if hk > float64(exact.IO)+1e-9 {
				t.Errorf("%s M=%d: Hong-Kung bound %g exceeds exact total I/O %d",
					g.Name(), M, hk, exact.IO)
			}
		}
	}
}

func TestInnerProductNontrivialPartition(t *testing.T) {
	// Inner product of 3-vectors: 6 inputs force more than one part at
	// small S (a single part would need a dominator of 6).
	g := gen.InnerProduct(3)
	p, err := MinPartition(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p < 2 {
		t.Errorf("P(4)=%d, want ≥ 2", p)
	}
	bound, err := Bound(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Errorf("Hong-Kung bound should be positive, got %g", bound)
	}
}
