// Package hongkung computes the classic Hong-Kung 2S-partition lower
// bound *exactly* on small graphs. Hong & Kung (1981) bound the total I/O
// of any execution by
//
//	Q  ≥  S · (P(2S) − 1)
//
// where P(2S) is the minimum number of parts in a 2S-partition of the
// computation DAG: a partition V = V1 ∪ … ∪ Vh with an acyclic quotient,
// every part having a dominator set of at most 2S vertices (a set meeting
// every path from the inputs into the part) and a minimum set of at most
// 2S vertices (the part's members with no successor inside it).
//
// The paper compares against an ILP formulation of this bound ([12]) only
// in prose — "intractable, cannot be performed for large graphs". This
// package fills the toy-scale gap: an acyclic quotient order makes prefix
// unions of parts down-sets, so P(S) is a shortest path in the down-set
// lattice, exact for graphs of a dozen vertices. Dominator sizes are
// minimum vertex cuts (package maxflow); memoized per part mask.
//
// Accounting caveat: Hong-Kung counts *total* I/O (inputs are loaded,
// outputs stored). Compare its bound against redblue.Optimal with
// CountTrivial set — not against the paper's non-trivial-I/O quantities.
package hongkung

import (
	"errors"
	"fmt"

	"graphio/internal/graph"
	"graphio/internal/maxflow"
)

// Options bounds the exact search.
type Options struct {
	// MaxDownSets aborts when the graph has more down-sets than this; the
	// lattice search touches down-set *pairs*, so the default (8192) keeps
	// worst-case work around 10^7 transitions.
	MaxDownSets int
}

// MinPartition returns P(S): the minimum number of parts in an S-partition
// of g. Limited to 16 vertices.
func MinPartition(g *graph.Graph, S int, opt Options) (int, error) {
	n := g.N()
	if n > 16 {
		return 0, fmt.Errorf("hongkung: exact partition limited to 16 vertices, graph has %d", n)
	}
	if S < 1 {
		return 0, errors.New("hongkung: S must be ≥ 1")
	}
	if n == 0 {
		return 0, nil
	}
	maxDS := opt.MaxDownSets
	if maxDS <= 0 {
		maxDS = 1 << 13
	}

	preds := make([]uint32, n)
	succs := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, p := range g.Pred(v) {
			preds[v] |= 1 << uint(p)
		}
		for _, s := range g.Succ(v) {
			succs[v] |= 1 << uint(s)
		}
	}
	all := uint32(1)<<n - 1

	// Enumerate all down-sets (prefix-closed vertex sets).
	downSets, err := enumerateDownSets(n, preds, maxDS)
	if err != nil {
		return 0, err
	}
	index := make(map[uint32]int, len(downSets))
	for i, d := range downSets {
		index[d] = i
	}

	domCache := make(map[uint32]int)
	minimumOK := func(part uint32) bool {
		count := 0
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if part&bit != 0 && succs[v]&part == 0 {
				count++
				if count > S {
					return false
				}
			}
		}
		return true
	}
	dominatorSize := func(part uint32) (int, error) {
		if d, ok := domCache[part]; ok {
			return d, nil
		}
		d, err := minDominator(g, part)
		if err != nil {
			return 0, err
		}
		domCache[part] = d
		return d, nil
	}

	// BFS over the down-set lattice: dist[D] = min parts to realize D.
	const inf = int32(1) << 30
	dist := make([]int32, len(downSets))
	for i := range dist {
		dist[i] = inf
	}
	dist[index[0]] = 0
	// Process down-sets in increasing popcount (valid BFS order is by
	// dist; uniform part cost makes layered BFS via a queue correct).
	queue := []uint32{0}
	for qi := 0; qi < len(queue); qi++ {
		d := queue[qi]
		di := dist[index[d]]
		if d == all {
			return int(di), nil
		}
		for _, d2 := range downSets {
			if d2&d != d || d2 == d {
				continue
			}
			part := d2 &^ d
			if !minimumOK(part) {
				continue
			}
			i2 := index[d2]
			if dist[i2] != inf {
				continue // already reached in fewer or equal parts
			}
			ds, err := dominatorSize(part)
			if err != nil {
				return 0, err
			}
			if ds > S {
				continue
			}
			dist[i2] = di + 1
			queue = append(queue, d2)
		}
	}
	if dist[index[all]] >= inf {
		return 0, errors.New("hongkung: no valid S-partition (S too small for some unavoidable part)")
	}
	return int(dist[index[all]]), nil
}

// enumerateDownSets lists every prefix-closed subset of V.
func enumerateDownSets(n int, preds []uint32, cap int) ([]uint32, error) {
	out := []uint32{0}
	seen := map[uint32]bool{0: true}
	for qi := 0; qi < len(out); qi++ {
		d := out[qi]
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if d&bit != 0 || preds[v]&^d != 0 {
				continue
			}
			nd := d | bit
			if !seen[nd] {
				if len(out) >= cap {
					return nil, fmt.Errorf("hongkung: more than %d down-sets", cap)
				}
				seen[nd] = true
				out = append(out, nd)
			}
		}
	}
	return out, nil
}

// minDominator computes the minimum size of a vertex set meeting every
// path from the graph's sources to the given part, as a min vertex s-t cut
// (vertices inside the part may themselves be dominators). The network
// indices are in range by construction, so errors here indicate a bug in
// the reduction and surface as wrapped errors rather than panics.
func minDominator(g *graph.Graph, part uint32) (int, error) {
	n := g.N()
	net := maxflow.NewNetwork(2*n + 2)
	s, t := 2*n, 2*n+1
	for u := 0; u < n; u++ {
		if err := net.AddEdge(2*u, 2*u+1, 1); err != nil {
			return 0, fmt.Errorf("hongkung: dominator network: %w", err)
		}
	}
	for x := 0; x < n; x++ {
		for _, y := range g.Succ(x) {
			if err := net.AddEdge(2*x+1, 2*int(y), maxflow.Inf); err != nil {
				return 0, fmt.Errorf("hongkung: dominator network: %w", err)
			}
		}
	}
	for u := 0; u < n; u++ {
		if g.InDeg(u) == 0 {
			if err := net.AddEdge(s, 2*u, maxflow.Inf); err != nil {
				return 0, fmt.Errorf("hongkung: dominator network: %w", err)
			}
		}
		if part&(1<<uint(u)) != 0 {
			if err := net.AddEdge(2*u+1, t, maxflow.Inf); err != nil {
				return 0, fmt.Errorf("hongkung: dominator network: %w", err)
			}
		}
	}
	flow, err := net.MaxFlow(s, t)
	if err != nil {
		return 0, fmt.Errorf("hongkung: dominator max-flow: %w", err)
	}
	return int(flow), nil
}

// Bound returns the Hong-Kung lower bound on the *total* I/O of any
// execution with fast memory M: M · (P(2M) − 1).
func Bound(g *graph.Graph, M int, opt Options) (float64, error) {
	if M < 1 {
		return 0, errors.New("hongkung: M must be ≥ 1")
	}
	p, err := MinPartition(g, 2*M, opt)
	if err != nil {
		return 0, err
	}
	if p <= 1 {
		return 0, nil
	}
	return float64(M) * float64(p-1), nil
}
