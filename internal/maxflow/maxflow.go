// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities. It is the substrate of the convex min-cut baseline: vertex
// separators are computed as s-t cuts on a split-node network.
package maxflow

import (
	"context"
	"errors"
	"math"

	"graphio/internal/obs"
)

// Inf is the capacity used for uncuttable edges.
const Inf int64 = math.MaxInt64 / 4

// Network is a flow network under construction and solution. Vertices are
// dense integers; add edges, then call MaxFlow once.
type Network struct {
	n     int
	head  []int32 // head[v]: first arc index of v, -1 if none
	next  []int32 // next arc in v's list
	to    []int32
	cap   []int64
	level []int32
	iter  []int32
}

// NewNetwork returns a flow network on n vertices.
func NewNetwork(n int) *Network {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Network{n: n, head: head}
}

// N returns the number of vertices.
func (f *Network) N() int { return f.n }

// AddEdge adds a directed edge u→v with the given capacity (and the
// implicit residual reverse edge of capacity 0). Arc indices are even for
// forward edges; e^1 is always e's reverse.
func (f *Network) AddEdge(u, v int, capacity int64) error {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		return errors.New("maxflow: edge endpoint out of range")
	}
	if capacity < 0 {
		return errors.New("maxflow: negative capacity")
	}
	f.addArc(u, v, capacity)
	f.addArc(v, u, 0)
	return nil
}

func (f *Network) addArc(u, v int, capacity int64) {
	f.to = append(f.to, int32(v))
	f.cap = append(f.cap, capacity)
	f.next = append(f.next, f.head[u])
	f.head[u] = int32(len(f.to) - 1)
}

// bfs builds the level graph; returns false when t is unreachable.
func (f *Network) bfs(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	queue := make([]int32, 0, f.n)
	f.level[s] = 0
	queue = append(queue, int32(s))
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for e := f.head[v]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && f.level[f.to[e]] == -1 {
				f.level[f.to[e]] = f.level[v] + 1
				queue = append(queue, f.to[e])
			}
		}
	}
	return f.level[t] != -1
}

// dfs sends blocking flow along the level graph.
func (f *Network) dfs(v int32, t int32, pushed int64) int64 {
	if v == t {
		return pushed
	}
	for ; f.iter[v] != -1; f.iter[v] = f.next[f.iter[v]] {
		e := f.iter[v]
		u := f.to[e]
		if f.cap[e] <= 0 || f.level[u] != f.level[v]+1 {
			continue
		}
		d := pushed
		if f.cap[e] < d {
			d = f.cap[e]
		}
		got := f.dfs(u, t, d)
		if got > 0 {
			f.cap[e] -= got
			f.cap[e^1] += got
			return got
		}
	}
	return 0
}

// MaxFlow computes the maximum s-t flow. The network's residual capacities
// are mutated; call MinCutSide afterwards to read the cut.
func (f *Network) MaxFlow(s, t int) (int64, error) {
	return f.MaxFlowContext(context.Background(), s, t)
}

// MaxFlowContext is MaxFlow with its per-phase probe events attributed to
// ctx's telemetry scope. Dinic phases are too short to warrant
// cancellation checks; the context exists purely for attribution.
func (f *Network) MaxFlowContext(ctx context.Context, s, t int) (int64, error) {
	if s < 0 || s >= f.n || t < 0 || t >= f.n {
		return 0, errors.New("maxflow: source or sink out of range")
	}
	if s == t {
		return 0, errors.New("maxflow: source equals sink")
	}
	f.level = make([]int32, f.n)
	f.iter = make([]int32, f.n)
	var total int64
	phase := int64(0)
	for f.bfs(s, t) {
		copy(f.iter, f.head)
		paths := int64(0)
		for {
			pushed := f.dfs(int32(s), int32(t), Inf)
			if pushed == 0 {
				break
			}
			paths++
			total += pushed
			if total >= Inf {
				return total, errors.New("maxflow: flow exceeds Inf — unbounded cut")
			}
		}
		if obs.EventsEnabled() {
			obs.Probe("maxflow.dinic").IterCtx(ctx, phase,
				obs.FI("paths", paths),
				obs.FI("flow", total),
				obs.FI("level_t", int64(f.level[t])))
		}
		phase++
	}
	return total, nil
}

// MinCutSide returns, after MaxFlow, the source side of a minimum cut: the
// vertices reachable from s in the residual network.
func (f *Network) MinCutSide(s int) []bool {
	side := make([]bool, f.n)
	stack := []int32{int32(s)}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := f.head[v]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && !side[f.to[e]] {
				side[f.to[e]] = true
				stack = append(stack, f.to[e])
			}
		}
	}
	return side
}
