package maxflow

import (
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, f *Network, u, v int, c int64) {
	t.Helper()
	if err := f.AddEdge(u, v, c); err != nil {
		t.Fatal(err)
	}
}

func TestSingleEdge(t *testing.T) {
	f := NewNetwork(2)
	mustEdge(t, f, 0, 1, 7)
	flow, err := f.MaxFlow(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 7 {
		t.Fatalf("flow=%d want 7", flow)
	}
	side := f.MinCutSide(0)
	if !side[0] || side[1] {
		t.Errorf("cut side: %v", side)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS figure: max flow 23.
	f := NewNetwork(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	mustEdge(t, f, s, v1, 16)
	mustEdge(t, f, s, v2, 13)
	mustEdge(t, f, v1, v3, 12)
	mustEdge(t, f, v2, v1, 4)
	mustEdge(t, f, v2, v4, 14)
	mustEdge(t, f, v3, v2, 9)
	mustEdge(t, f, v3, tt, 20)
	mustEdge(t, f, v4, v3, 7)
	mustEdge(t, f, v4, tt, 4)
	flow, err := f.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 23 {
		t.Fatalf("flow=%d want 23", flow)
	}
}

func TestDisconnected(t *testing.T) {
	f := NewNetwork(4)
	mustEdge(t, f, 0, 1, 5)
	mustEdge(t, f, 2, 3, 5)
	flow, err := f.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 {
		t.Fatalf("flow=%d want 0", flow)
	}
}

func TestParallelPaths(t *testing.T) {
	f := NewNetwork(4)
	mustEdge(t, f, 0, 1, 3)
	mustEdge(t, f, 0, 2, 5)
	mustEdge(t, f, 1, 3, 4)
	mustEdge(t, f, 2, 3, 2)
	flow, err := f.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 5 { // min(3,4) + min(5,2)
		t.Fatalf("flow=%d want 5", flow)
	}
}

func TestErrors(t *testing.T) {
	f := NewNetwork(2)
	if err := f.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := f.AddEdge(0, 1, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := f.MaxFlow(0, 0); err == nil {
		t.Error("s == t accepted")
	}
	if _, err := f.MaxFlow(0, 9); err == nil {
		t.Error("sink out of range accepted")
	}
}

// bruteMinCut enumerates all s-t cuts of a small network described by an
// explicit edge list and returns the minimum cut capacity.
func bruteMinCut(n int, edges [][3]int64, s, t int) int64 {
	best := int64(1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var capSum int64
		for _, e := range edges {
			if mask&(1<<e[0]) != 0 && mask&(1<<e[1]) == 0 {
				capSum += e[2]
			}
		}
		if capSum < best {
			best = capSum
		}
	}
	return best
}

func TestMaxFlowEqualsBruteMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		var edges [][3]int64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					edges = append(edges, [3]int64{int64(u), int64(v), int64(1 + rng.Intn(9))})
				}
			}
		}
		f := NewNetwork(n)
		for _, e := range edges {
			mustEdge(t, f, int(e[0]), int(e[1]), e[2])
		}
		flow, err := f.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMinCut(n, edges, 0, n-1)
		if flow != want {
			t.Fatalf("trial %d: flow %d != brute min cut %d (n=%d, edges=%v)", trial, flow, want, n, edges)
		}
		// The reported cut side must realize the same capacity.
		side := f.MinCutSide(0)
		var across int64
		for _, e := range edges {
			if side[e[0]] && !side[e[1]] {
				across += e[2]
			}
		}
		if across != flow {
			t.Fatalf("trial %d: cut side capacity %d != flow %d", trial, across, flow)
		}
	}
}
