package trace_test

import (
	"fmt"

	"graphio/internal/trace"
)

// Example records a tiny computation — (a+b)·a — and extracts its graph.
func Example() {
	tr := trace.New()
	a := tr.Input("a")
	b := tr.Input("b")
	a.Add(b).Mul(a)
	g := tr.MustGraph("demo")
	fmt.Printf("%d ops, %d deps, sinks=%v\n", g.N(), g.M(), g.Sinks())
	// Output:
	// 4 ops, 4 deps, sinks=[3]
}

// ExampleReduceAdd sums eight inputs with a chain of binary adds.
func ExampleReduceAdd() {
	tr := trace.New()
	xs := tr.Inputs("x", 8)
	root := trace.ReduceAdd(xs)
	fmt.Printf("root id %d of %d ops\n", root.ID(), tr.NumOps())
	// Output:
	// root id 14 of 15 ops
}
