// Package trace extracts computation graphs from straight-line programs,
// the Go equivalent of the paper's §6.1 solver (which traces Python
// arithmetic by operator overloading). A Tracer hands out opaque Values;
// every arithmetic method or custom Op call on a Value records one vertex,
// with edges from each operand. The resulting DAG feeds directly into the
// spectral bound.
//
//	tr := trace.New()
//	a, b := tr.Input("a"), tr.Input("b")
//	c := a.Mul(b).Add(a)
//	g, _ := tr.Graph("example")
package trace

import (
	"bufio"
	"fmt"
	"io"

	"graphio/internal/graph"
)

// Tracer records a computation as it is built.
type Tracer struct {
	labels []string
	edges  [][2]int
}

// Value is a handle to one traced operation result (or input).
type Value struct {
	t  *Tracer
	id int
}

// New returns an empty Tracer.
func New() *Tracer { return &Tracer{} }

// NumOps reports the number of operations (vertices) recorded so far.
func (t *Tracer) NumOps() int { return len(t.labels) }

// Input records an input vertex (a source of the computation graph) and
// returns its Value. The label is kept for DOT/debug output.
func (t *Tracer) Input(label string) Value {
	return t.newVertex("in:" + label)
}

// Inputs records n inputs labelled prefix0..prefix{n-1}.
func (t *Tracer) Inputs(prefix string, n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = t.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Op records an operation with the given operands and returns its Value.
// Every operand must come from this Tracer. Repeated operands (e.g.
// squaring) are legal and contribute a single graph edge.
func (t *Tracer) Op(label string, operands ...Value) Value {
	for _, o := range operands {
		if o.t != t {
			//lint:ignore no-panic cross-tracer operands are a programmer error the fluent API cannot report any other way
			panic("trace: operand from a different Tracer")
		}
	}
	v := t.newVertex(label)
	for _, o := range operands {
		t.edges = append(t.edges, [2]int{o.id, v.id})
	}
	return v
}

func (t *Tracer) newVertex(label string) Value {
	id := len(t.labels)
	t.labels = append(t.labels, label)
	return Value{t: t, id: id}
}

// ID returns the vertex ID this value will have in the extracted graph.
func (v Value) ID() int { return v.id }

// Add records v + o.
func (v Value) Add(o Value) Value { return v.t.Op("add", v, o) }

// Sub records v − o.
func (v Value) Sub(o Value) Value { return v.t.Op("sub", v, o) }

// Mul records v · o.
func (v Value) Mul(o Value) Value { return v.t.Op("mul", v, o) }

// Min records min(v, o); dynamic-programming recurrences use it.
func (v Value) Min(o Value) Value { return v.t.Op("min", v, o) }

// Label returns the operation label recorded for v.
func (v Value) Label() string { return v.t.labels[v.id] }

// Labels returns the operation label for every vertex, indexed by vertex ID.
func (t *Tracer) Labels() []string {
	out := make([]string, len(t.labels))
	copy(out, t.labels)
	return out
}

// Graph extracts the traced computation graph.
func (t *Tracer) Graph(name string) (*graph.Graph, error) {
	b := graph.NewBuilder(len(t.labels), len(t.edges))
	b.SetName(name)
	b.AddVertices(len(t.labels))
	for _, e := range t.edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustGraph is Graph but panics on error; traces built through this API are
// acyclic by construction, so the error path exists only for defensive use.
func (t *Tracer) MustGraph(name string) *graph.Graph {
	g, err := t.Graph(name)
	if err != nil {
		//lint:ignore no-panic Must* contract: traces built through this API are acyclic by construction
		panic(err)
	}
	return g
}

// WriteDOT renders the traced computation in Graphviz DOT format with the
// recorded operation labels on the vertices — richer than the plain
// graph.WriteDOT, which only has IDs.
func (t *Tracer) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n", name)
	for id, label := range t.labels {
		shape := "ellipse"
		if len(label) >= 3 && label[:3] == "in:" {
			shape = "box"
		}
		fmt.Fprintf(bw, "  %d [label=%q shape=%s];\n", id, label, shape)
	}
	for _, e := range t.edges {
		fmt.Fprintf(bw, "  %d -> %d;\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// ReduceAdd folds the values with a left-to-right chain of binary adds and
// returns the root; it records len(vals)−1 add vertices. Panics on empty
// input.
func ReduceAdd(vals []Value) Value {
	if len(vals) == 0 {
		//lint:ignore no-panic documented contract: reducing zero values has no defined root and no error channel in the fluent API
		panic("trace: ReduceAdd of no values")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = acc.Add(v)
	}
	return acc
}

// ReduceMin folds the values with a chain of binary mins.
func ReduceMin(vals []Value) Value {
	if len(vals) == 0 {
		//lint:ignore no-panic documented contract: reducing zero values has no defined root and no error channel in the fluent API
		panic("trace: ReduceMin of no values")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = acc.Min(v)
	}
	return acc
}
