package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestInnerProductShape(t *testing.T) {
	// Paper Figure 1: inner product of two 2-vectors is a 7-vertex graph.
	tr := New()
	x := tr.Inputs("x", 2)
	y := tr.Inputs("y", 2)
	p0 := x[0].Mul(y[0])
	p1 := x[1].Mul(y[1])
	sum := p0.Add(p1)
	g := tr.MustGraph("inner")
	if g.N() != 7 {
		t.Fatalf("N=%d want 7", g.N())
	}
	if g.M() != 6 {
		t.Fatalf("M=%d want 6", g.M())
	}
	if len(g.Sources()) != 4 {
		t.Errorf("sources=%v", g.Sources())
	}
	if sinks := g.Sinks(); len(sinks) != 1 || sinks[0] != sum.ID() {
		t.Errorf("sinks=%v want [%d]", sinks, sum.ID())
	}
	if g.InDeg(sum.ID()) != 2 || g.InDeg(p0.ID()) != 2 {
		t.Error("in-degrees wrong")
	}
}

func TestOpLabelsAndIDs(t *testing.T) {
	tr := New()
	a := tr.Input("a")
	b := tr.Input("b")
	c := tr.Op("custom", a, b)
	if a.Label() != "in:a" || c.Label() != "custom" {
		t.Errorf("labels: %q %q", a.Label(), c.Label())
	}
	labels := tr.Labels()
	if len(labels) != 3 || labels[c.ID()] != "custom" {
		t.Errorf("Labels() = %v", labels)
	}
	if tr.NumOps() != 3 {
		t.Errorf("NumOps=%d", tr.NumOps())
	}
}

func TestRepeatedOperandSquaring(t *testing.T) {
	tr := New()
	a := tr.Input("a")
	sq := a.Mul(a)
	g := tr.MustGraph("square")
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N=%d M=%d want 2,1", g.N(), g.M())
	}
	if g.InDeg(sq.ID()) != 1 {
		t.Errorf("squaring should leave one deduplicated edge")
	}
}

func TestCrossTracerPanics(t *testing.T) {
	t1, t2 := New(), New()
	a := t1.Input("a")
	b := t2.Input("b")
	defer func() {
		if recover() == nil {
			t.Error("mixing tracers should panic")
		}
	}()
	a.Add(b)
}

func TestArithmeticMethods(t *testing.T) {
	tr := New()
	a, b := tr.Input("a"), tr.Input("b")
	for _, v := range []Value{a.Add(b), a.Sub(b), a.Mul(b), a.Min(b)} {
		g := tr.MustGraph("ops")
		if g.InDeg(v.ID()) != 2 {
			t.Errorf("op %q in-degree %d", v.Label(), g.InDeg(v.ID()))
		}
	}
	if got := tr.Labels()[2:]; got[0] != "add" || got[1] != "sub" || got[2] != "mul" || got[3] != "min" {
		t.Errorf("op labels: %v", got)
	}
}

func TestReduceAddChain(t *testing.T) {
	tr := New()
	xs := tr.Inputs("x", 5)
	root := ReduceAdd(xs)
	g := tr.MustGraph("reduce")
	if g.N() != 9 { // 5 inputs + 4 adds
		t.Fatalf("N=%d want 9", g.N())
	}
	if sinks := g.Sinks(); len(sinks) != 1 || sinks[0] != root.ID() {
		t.Errorf("sinks=%v", sinks)
	}
}

func TestReduceMinSingle(t *testing.T) {
	tr := New()
	xs := tr.Inputs("x", 1)
	if got := ReduceMin(xs); got.ID() != xs[0].ID() {
		t.Error("ReduceMin of one value should be the value itself")
	}
}

func TestWriteDOTWithLabels(t *testing.T) {
	tr := New()
	a := tr.Input("a")
	b := tr.Input("b")
	a.Mul(b)
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"in:a"`, `"mul"`, "0 -> 2", "shape=box", "shape=ellipse"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteDOTVertexShapes(t *testing.T) {
	// Every input vertex must render as a box, every operation vertex as an
	// ellipse, and every recorded dependency as an edge line — the DOT
	// output is the debugging view of a trace, so its shape conventions are
	// part of the contract.
	tr := New()
	x := tr.Inputs("x", 2)
	y := tr.Inputs("y", 2)
	p0 := x[0].Mul(y[0])
	p1 := x[1].Mul(y[1])
	sum := p0.Add(p1)
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, "shapes"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, in := range append(x, y...) {
		want := fmt.Sprintf("  %d [label=%q shape=box];", in.ID(), in.Label())
		if !strings.Contains(out, want) {
			t.Errorf("input vertex line missing: %q\n%s", want, out)
		}
	}
	for _, op := range []Value{p0, p1, sum} {
		want := fmt.Sprintf("  %d [label=%q shape=ellipse];", op.ID(), op.Label())
		if !strings.Contains(out, want) {
			t.Errorf("operation vertex line missing: %q\n%s", want, out)
		}
	}
	for _, e := range [][2]int{
		{x[0].ID(), p0.ID()}, {y[0].ID(), p0.ID()},
		{x[1].ID(), p1.ID()}, {y[1].ID(), p1.ID()},
		{p0.ID(), sum.ID()}, {p1.ID(), sum.ID()},
	} {
		want := fmt.Sprintf("  %d -> %d;", e[0], e[1])
		if !strings.Contains(out, want) {
			t.Errorf("edge line missing: %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "shape=box"); n != 4 {
		t.Errorf("shape=box appears %d times, want 4 (one per input)", n)
	}
	if n := strings.Count(out, "shape=ellipse"); n != 3 {
		t.Errorf("shape=ellipse appears %d times, want 3 (one per operation)", n)
	}
	if n := strings.Count(out, "->"); n != 6 {
		t.Errorf("%d edge lines, want 6", n)
	}
}

func TestOpCrossTracerPanics(t *testing.T) {
	// Tracer.Op itself (not just the Value arithmetic sugar) must reject an
	// operand minted by a different Tracer before recording anything.
	t1, t2 := New(), New()
	a := t1.Input("a")
	foreign := t2.Input("b")
	defer func() {
		if recover() == nil {
			t.Error("Tracer.Op with a foreign operand should panic")
		}
		if t1.NumOps() != 1 {
			t.Errorf("panic should happen before the vertex is recorded; NumOps=%d want 1", t1.NumOps())
		}
	}()
	t1.Op("mix", a, foreign)
}

func TestReducePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReduceAdd(nil) should panic")
		}
	}()
	ReduceAdd(nil)
}
