package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/persist"
)

// writeHistory commits bench_run ledger records the way benchjson -history
// does.
func writeHistory(t *testing.T, runs ...benchRun) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench_history.jsonl")
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func ledgerRun(rev string, bound, sweep float64) benchRun {
	return benchRun{
		Kind: "bench_run", Time: "2026-08-07T00:00:00Z", GitRev: rev,
		Go: "go1.x", GOOS: "linux", GOARCH: "amd64", ConfigHash: "abc",
		Benches: map[string]float64{"BenchmarkBound": bound, "BenchmarkSweep": sweep},
	}
}

func TestTrendFlagsRegression(t *testing.T) {
	path := writeHistory(t,
		ledgerRun("aaa1111", 1000000, 500000),
		ledgerRun("bbb2222", 1100000, 505000),
		ledgerRun("ccc3333", 1500000, 495000),
	)
	var buf bytes.Buffer
	regressed, err := runTrend(&buf, path, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Latest BenchmarkBound 1.5ms vs median(1.0ms, 1.1ms) = 1.05ms → +42.9%.
	if regressed != 1 {
		t.Errorf("regressed = %d, want 1 (BenchmarkBound only)\n%s", regressed, out)
	}
	if !strings.Contains(out, "+42.9%") || !strings.Contains(out, "!") {
		t.Errorf("report missing the regression delta/mark:\n%s", out)
	}
	if !strings.Contains(out, "3 run(s)") || !strings.Contains(out, "(latest)") {
		t.Errorf("report missing the run listing:\n%s", out)
	}
	// Below the threshold nothing regresses.
	if regressed, err = runTrend(&buf, path, 10, 50); err != nil || regressed != 0 {
		t.Errorf("fail-over 50: regressed = %d, err = %v, want 0, nil", regressed, err)
	}
}

func TestTrendWindowLimitsRuns(t *testing.T) {
	// With -n 2 only the last two runs are considered: median(prior) is the
	// single bbb2222 run, so BenchmarkBound's delta is vs 1.1ms, not 1.05ms.
	path := writeHistory(t,
		ledgerRun("aaa1111", 1000000, 500000),
		ledgerRun("bbb2222", 1100000, 505000),
		ledgerRun("ccc3333", 1500000, 495000),
	)
	var buf bytes.Buffer
	if _, err := runTrend(&buf, path, 2, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 run(s)") {
		t.Errorf("window not applied:\n%s", out)
	}
	if !strings.Contains(out, "+36.4%") {
		t.Errorf("median should cover only the windowed prior run (want +36.4%%):\n%s", out)
	}
}

func TestTrendGracefulWithSingleRun(t *testing.T) {
	path := writeHistory(t, ledgerRun("aaa1111", 1000000, 500000))
	var buf bytes.Buffer
	regressed, err := runTrend(&buf, path, 10, 20)
	if err != nil {
		t.Fatalf("a one-run ledger must report, not fail: %v", err)
	}
	if regressed != 0 {
		t.Errorf("regressed = %d with nothing to compare against", regressed)
	}
	if !strings.Contains(buf.String(), "nothing to compare") {
		t.Errorf("single-run report missing explanation:\n%s", buf.String())
	}
}

func TestTrendNewAndDroppedBenchmarks(t *testing.T) {
	old := benchRun{Kind: "bench_run", GitRev: "aaa", Benches: map[string]float64{
		"BenchmarkBound": 1000000, "BenchmarkGone": 2000}}
	cur := benchRun{Kind: "bench_run", GitRev: "bbb", Benches: map[string]float64{
		"BenchmarkBound": 1010000, "BenchmarkNew": 3000}}
	path := writeHistory(t, old, cur)
	var buf bytes.Buffer
	if _, err := runTrend(&buf, path, 10, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(new)") {
		t.Errorf("benchmark without prior data not marked new:\n%s", out)
	}
	if !strings.Contains(out, "1 benchmark(s) from prior runs absent") {
		t.Errorf("dropped benchmark not reported:\n%s", out)
	}
}

func TestTrendErrorsOnEmptyLedger(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runTrend(&buf, filepath.Join(t.TempDir(), "none.jsonl"), 10, 0); err == nil {
		t.Error("missing ledger should error")
	}
	path := writeHistory(t, benchRun{Kind: "something_else"})
	if _, err := runTrend(&buf, path, 10, 0); err == nil {
		t.Error("ledger without bench_run records should error")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %g", m)
	}
	if m := median([]float64{7}); m != 7 {
		t.Errorf("median single = %g", m)
	}
}
