// Command obsreport turns graphio telemetry files into run reports and
// regression verdicts. It reads any of the three JSON shapes the toolchain
// emits, auto-detected by content:
//
//   - metrics snapshots written by -metrics-out (counters/gauges/timers/hists)
//   - Chrome trace-event files written by -trace-out
//   - benchmark maps written by cmd/benchjson (BENCH_*.json)
//
// One file renders a report: the span phase tree with total/self wall time,
// the top counters, gauges, and histogram quantiles. Two files render
// per-metric deltas instead; with -fail-over PCT the exit code becomes 1
// when any time-like metric (timer averages, histogram p50s, trace phase
// totals, benchmark ns/op) regressed by more than PCT percent — the CI gate
// behind `make bench-check`.
//
//	obsreport run.json
//	obsreport run.trace.json
//	obsreport old.json new.json
//	obsreport -fail-over 20 BENCH_PR1.json bench_now.json
//
// Two subcommands cover the solver-introspection artifacts:
//
//	obsreport convergence run.events.jsonl          per-iteration solver event report
//	obsreport trend results/bench_history.jsonl     multi-run benchmark ledger trends
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"graphio/internal/linalg"
	"graphio/internal/obs"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "convergence":
			os.Exit(convergenceMain(os.Args[2:]))
		case "trend":
			os.Exit(trendMain(os.Args[2:]))
		}
	}
	failOver := flag.Float64("fail-over", 0, "two-file mode: exit 1 when a time-like metric regresses by more than this percent (0 = report only)")
	top := flag.Int("top", 10, "how many counters to show in one-file reports")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [-fail-over PCT] [-top N] FILE [FILE2]\n       obsreport convergence [...] EVENTS.jsonl\n       obsreport trend [...] [HISTORY.jsonl]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	var err error
	switch len(args) {
	case 1:
		var in *input
		if in, err = load(args[0]); err == nil {
			err = report(os.Stdout, in, *top)
		}
	case 2:
		var a, b *input
		if a, err = load(args[0]); err == nil {
			if b, err = load(args[1]); err == nil {
				var regressed int
				regressed, err = compare(os.Stdout, a, b, *failOver)
				if err == nil && *failOver > 0 && regressed > 0 {
					fmt.Printf("FAIL: %d metric(s) regressed more than %.0f%%\n", regressed, *failOver)
					os.Exit(1)
				}
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
		os.Exit(1)
	}
}

// spanAgg is one span name's aggregate across a run.
type spanAgg struct {
	count   int64
	totalNS int64
}

// input is one loaded telemetry file, normalized across the three formats.
type input struct {
	path   string
	kind   string             // "metrics", "trace", "bench"
	snap   *obs.Snapshot      // kind == "metrics"
	scopes []obs.ScopeSection // kind == "metrics", scoped sweeps only
	spans  map[string]spanAgg // phase tree input ("a/b/c" paths)
	// values maps flattened metric keys to comparable numbers; timeLike
	// marks the keys where an increase means a slowdown.
	values   map[string]float64
	timeLike map[string]bool
}

// benchResult mirrors cmd/benchjson's output entry.
type benchResult struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// chromeEvent is the subset of a trace-event entry obsreport consumes.
// ts/dur are microseconds per the Chrome trace-event spec.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Dur  float64 `json:"dur"`
}

// load reads path and detects its format by shape.
func load(path string) (*input, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("%s: not a JSON object: %w", path, err)
	}
	in := &input{path: path, spans: map[string]spanAgg{}, values: map[string]float64{}, timeLike: map[string]bool{}}
	if raw, ok := probe["traceEvents"]; ok {
		return in.fromTrace(raw)
	}
	if _, ok := probe["counters"]; ok {
		return in.fromSnapshot(b)
	}
	return in.fromBench(b)
}

func (in *input) fromTrace(raw json.RawMessage) (*input, error) {
	in.kind = "trace"
	var events []chromeEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		return nil, fmt.Errorf("%s: bad traceEvents: %w", in.path, err)
	}
	for _, e := range events {
		if e.Ph != "X" || e.Name == "" {
			continue
		}
		agg := in.spans[e.Name]
		agg.count++
		agg.totalNS += int64(e.Dur * 1000)
		in.spans[e.Name] = agg
	}
	for name, agg := range in.spans {
		in.values["trace:"+name+".total_ns"] = float64(agg.totalNS)
		in.timeLike["trace:"+name+".total_ns"] = true
	}
	return in, nil
}

func (in *input) fromSnapshot(b []byte) (*input, error) {
	in.kind = "metrics"
	// Dump embeds Snapshot, so this parses both the scoped shape written
	// since the per-task telemetry refactor and older plain snapshots
	// (whose scopes list simply comes back empty).
	var d obs.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: bad metrics snapshot: %w", in.path, err)
	}
	s := d.Snapshot
	in.snap = &s
	in.scopes = d.Scopes
	for name, t := range s.Timers {
		if short, ok := strings.CutPrefix(name, "span."); ok {
			in.spans[short] = spanAgg{count: t.Count, totalNS: t.TotalNS}
		}
		in.values["timer:"+name+".avg_ns"] = float64(t.AvgNS)
		in.timeLike["timer:"+name+".avg_ns"] = true
	}
	for name, h := range s.Hists {
		in.values["hist:"+name+".p50"] = h.P50
		in.timeLike["hist:"+name+".p50"] = strings.HasSuffix(name, "_ns")
	}
	for name, v := range s.Counters {
		in.values["counter:"+name] = float64(v)
	}
	for name, v := range s.Gauges {
		in.values["gauge:"+name] = v
		if name == "wall_seconds" {
			in.timeLike["gauge:"+name] = true
		}
	}
	return in, nil
}

func (in *input) fromBench(b []byte) (*input, error) {
	in.kind = "bench"
	var m map[string]benchResult
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: bad bench JSON: %w", in.path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks found", in.path)
	}
	for name, r := range m {
		if r.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: %s has no ns/op — not a benchjson file?", in.path, name)
		}
		in.values["bench:"+name+".ns_per_op"] = r.NsPerOp
		in.timeLike["bench:"+name+".ns_per_op"] = true
		if r.AllocsPerOp != nil {
			in.values["bench:"+name+".allocs_per_op"] = *r.AllocsPerOp
		}
	}
	return in, nil
}

// ----- one-file report -----

// node is one level of the span phase tree.
type node struct {
	name     string
	agg      spanAgg
	children map[string]*node
}

func buildTree(spans map[string]spanAgg) *node {
	root := &node{children: map[string]*node{}}
	for path, agg := range spans {
		cur := root
		for _, seg := range strings.Split(path, "/") {
			next := cur.children[seg]
			if next == nil {
				next = &node{name: seg, children: map[string]*node{}}
				cur.children[seg] = next
			}
			cur = next
		}
		cur.agg = agg
	}
	return root
}

func (n *node) childrenByTotal() []*node {
	kids := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].agg.totalNS != kids[j].agg.totalNS {
			return kids[i].agg.totalNS > kids[j].agg.totalNS
		}
		return kids[i].name < kids[j].name
	})
	return kids
}

// selfNS is the node's total minus its children's totals, clamped at zero
// (clock skew between parent and child stop watches can go slightly
// negative).
func (n *node) selfNS() int64 {
	self := n.agg.totalNS
	for _, c := range n.children {
		self -= c.agg.totalNS
	}
	if self < 0 {
		self = 0
	}
	return self
}

func renderTree(w *strings.Builder, n *node, depth int) {
	for _, c := range n.childrenByTotal() {
		fmt.Fprintf(w, "  %-*s%-*s total %-11s self %-11s ×%d\n",
			2*depth, "", 44-2*depth, c.name,
			fmtDur(c.agg.totalNS), fmtDur(c.selfNS()), c.agg.count)
		renderTree(w, c, depth+1)
	}
}

func fmtDur(ns int64) string {
	d := time.Duration(ns)
	if -time.Microsecond < d && d < time.Microsecond {
		return d.String() // sub-µs latencies must not round to "0s"
	}
	return d.Round(time.Microsecond).String()
}

func report(w io.Writer, in *input, top int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", in.path, in.kind)
	if len(in.spans) > 0 {
		fmt.Fprintf(&b, "\nphase tree (wall time)\n")
		renderTree(&b, buildTree(in.spans), 0)
	}
	if in.snap != nil {
		writeCounters(&b, in.snap, top)
		writeGauges(&b, in.snap)
		writeHists(&b, in.snap)
		writeScopes(&b, in.scopes)
	}
	if in.kind == "bench" {
		writeBench(&b, in)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCounters(b *strings.Builder, s *obs.Snapshot, top int) {
	if len(s.Counters) == 0 {
		return
	}
	type kv struct {
		k string
		v int64
	}
	all := make([]kv, 0, len(s.Counters))
	for k, v := range s.Counters {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if top > 0 && len(all) > top {
		all = all[:top]
	}
	fmt.Fprintf(b, "\ncounters (top %d by value)\n", len(all))
	for _, e := range all {
		fmt.Fprintf(b, "  %-44s %d\n", e.k, e.v)
	}
}

func writeGauges(b *strings.Builder, s *obs.Snapshot) {
	if len(s.Gauges) == 0 {
		return
	}
	names := sortedKeys(s.Gauges)
	fmt.Fprintf(b, "\ngauges\n")
	for _, k := range names {
		fmt.Fprintf(b, "  %-44s %g\n", k, s.Gauges[k])
	}
}

func writeHists(b *strings.Builder, s *obs.Snapshot) {
	if len(s.Hists) == 0 {
		return
	}
	names := sortedKeys(s.Hists)
	fmt.Fprintf(b, "\nhistograms\n")
	fmt.Fprintf(b, "  %-44s %9s %11s %11s %11s %11s %11s\n", "name", "count", "mean", "p50", "p90", "p99", "max")
	for _, k := range names {
		h := s.Hists[k]
		if strings.HasSuffix(k, "_ns") {
			fmt.Fprintf(b, "  %-44s %9d %11s %11s %11s %11s %11s\n", k, h.Count,
				fmtDur(int64(h.Mean)), fmtDur(int64(h.P50)), fmtDur(int64(h.P90)), fmtDur(int64(h.P99)), fmtDur(h.Max))
		} else {
			fmt.Fprintf(b, "  %-44s %9d %11.1f %11.1f %11.1f %11.1f %11d\n", k, h.Count,
				h.Mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
}

// writeScopes renders the per-task sections of a scoped metrics dump: one
// line per scope (sweep, experiment, test, ...) with its wall time, event
// count, and largest counters. The section values are a decomposition of
// the process-wide numbers above, not additions to them.
func writeScopes(b *strings.Builder, scopes []obs.ScopeSection) {
	if len(scopes) == 0 {
		return
	}
	fmt.Fprintf(b, "\nscopes (per-task decomposition)\n")
	for _, sc := range scopes {
		fmt.Fprintf(b, "  %-8s %-34s wall %-11s events %d\n",
			sc.ID, sc.Path, fmtDur(sc.WallNS), sc.Events)
		type kv struct {
			k string
			v int64
		}
		top := make([]kv, 0, len(sc.Metrics.Counters))
		for k, v := range sc.Metrics.Counters {
			top = append(top, kv{k, v})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].v != top[j].v {
				return top[i].v > top[j].v
			}
			return top[i].k < top[j].k
		})
		if len(top) > 5 {
			top = top[:5]
		}
		for _, e := range top {
			fmt.Fprintf(b, "    %-42s %d\n", e.k, e.v)
		}
	}
}

func writeBench(b *strings.Builder, in *input) {
	names := sortedKeys(in.values)
	fmt.Fprintf(b, "\nbenchmarks\n")
	for _, k := range names {
		if !strings.HasSuffix(k, ".ns_per_op") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(k, "bench:"), ".ns_per_op")
		fmt.Fprintf(b, "  %-44s %s/op\n", name, fmtDur(int64(in.values[k])))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ----- two-file comparison -----

// compare prints per-metric deltas for keys present in both inputs and
// returns how many time-like metrics regressed past failOver percent.
func compare(w io.Writer, a, b *input, failOver float64) (int, error) {
	common := make([]string, 0, len(a.values))
	for k := range a.values {
		if _, ok := b.values[k]; ok {
			common = append(common, k)
		}
	}
	sort.Strings(common)
	if len(common) == 0 {
		return 0, fmt.Errorf("no common metrics between %s and %s", a.path, b.path)
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%s → %s (%d common metrics)\n", a.path, b.path, len(common))
	fmt.Fprintf(&out, "%-58s %14s %14s %9s\n", "metric", "old", "new", "delta")
	regressed := 0
	for _, k := range common {
		ov, nv := a.values[k], b.values[k]
		delta, has := deltaPct(ov, nv)
		mark := ""
		if has && failOver > 0 && delta > failOver && a.timeLike[k] && b.timeLike[k] {
			regressed++
			mark = "  !"
		}
		ds := "n/a"
		if has {
			ds = fmt.Sprintf("%+.1f%%", delta)
		}
		fmt.Fprintf(&out, "%-58s %14s %14s %9s%s\n", k, fmtValue(k, ov), fmtValue(k, nv), ds, mark)
	}
	onlyA, onlyB := 0, 0
	for k := range a.values {
		if _, ok := b.values[k]; !ok {
			onlyA++
		}
	}
	for k := range b.values {
		if _, ok := a.values[k]; !ok {
			onlyB++
		}
	}
	if onlyA+onlyB > 0 {
		fmt.Fprintf(&out, "(%d metrics only in %s, %d only in %s)\n", onlyA, a.path, onlyB, b.path)
	}
	_, err := io.WriteString(w, out.String())
	return regressed, err
}

func deltaPct(old, new float64) (float64, bool) {
	if linalg.EqZero(old) {
		return 0, linalg.EqZero(new)
	}
	return (new - old) / old * 100, true
}

// fmtValue renders nanosecond-unit metrics as durations and everything
// else as plain numbers.
func fmtValue(key string, v float64) string {
	if strings.HasSuffix(key, "_ns") || strings.HasSuffix(key, ".ns_per_op") || strings.Contains(key, "_ns.") {
		return fmtDur(int64(v))
	}
	return fmt.Sprintf("%g", v)
}
