package main

// The convergence subcommand renders the per-iteration solver event log
// written by -events-out (a CRC-framed persist journal; see obs.WriteEvents
// for the record shape). For each probe it tabulates the field evolution
// (first/last/min/max plus a trend sparkline), flags stagnation plateaus —
// runs of consecutive events whose relative change stays under a tolerance
// — and attributes wall time to solver phases from the event timestamps.
//
//	obsreport convergence run.events.jsonl
//	obsreport convergence -probe linalg.lanczos -plateau-tol 0.5 run.events.jsonl

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"graphio/internal/persist"
)

// probeEvent mirrors one -events-out journal record (obs.WriteEvents).
type probeEvent struct {
	Probe string             `json:"probe"`
	Iter  int64              `json:"iter"`
	TNS   int64              `json:"t_ns"`
	F     map[string]float64 `json:"f"`
}

func convergenceMain(args []string) int {
	fs := flag.NewFlagSet("convergence", flag.ExitOnError)
	probe := fs.String("probe", "", "restrict the report to one probe name")
	tol := fs.Float64("plateau-tol", 1.0, "relative change (percent) under which consecutive events count as stagnant")
	run := fs.Int("plateau-run", 5, "consecutive stagnant events needed to flag a plateau")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport convergence [-probe NAME] [-plateau-tol PCT] [-plateau-run N] EVENTS.jsonl")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error here
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if err := runConvergence(os.Stdout, fs.Arg(0), *probe, *tol, *run); err != nil {
		fmt.Fprintf(os.Stderr, "obsreport convergence: %v\n", err)
		return 1
	}
	return 0
}

// runConvergence loads the event journal and writes the report. Split from
// convergenceMain so tests drive it against golden output directly.
func runConvergence(w io.Writer, path, only string, tolPct float64, plateauRun int) error {
	records, err := persist.ReadJournal(path)
	if err != nil {
		return err
	}
	byProbe := map[string][]probeEvent{}
	total := 0
	minT, maxT := int64(math.MaxInt64), int64(math.MinInt64)
	for _, raw := range records {
		var ev probeEvent
		if err := json.Unmarshal(raw, &ev); err != nil || ev.Probe == "" {
			continue // torn-adjacent or foreign record: skip, don't fail the report
		}
		if only != "" && ev.Probe != only {
			continue
		}
		byProbe[ev.Probe] = append(byProbe[ev.Probe], ev)
		total++
		if ev.TNS < minT {
			minT = ev.TNS
		}
		if ev.TNS > maxT {
			maxT = ev.TNS
		}
	}
	if total == 0 {
		if only != "" {
			return fmt.Errorf("%s: no events from probe %q", path, only)
		}
		return fmt.Errorf("%s: no probe events", path)
	}
	runSpan := maxT - minT
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d events, %d probe(s), span %s\n", path, total, len(byProbe), fmtDur(runSpan))
	for _, name := range sortedKeys(byProbe) {
		evs := byProbe[name]
		first, last := evs[0], evs[len(evs)-1]
		span := last.TNS - first.TNS
		pct := 0.0
		if runSpan > 0 {
			pct = float64(span) / float64(runSpan) * 100
		}
		fmt.Fprintf(&b, "\nprobe %s: %d events, iters %d..%d, span %s (%.1f%% of run wall time)\n",
			name, len(evs), first.Iter, last.Iter, fmtDur(span), pct)
		fieldSet := map[string]bool{}
		for _, e := range evs {
			for k := range e.F {
				fieldSet[k] = true
			}
		}
		fields := sortedKeys(fieldSet)
		if len(fields) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s %12s %12s %12s %12s  %s\n", "field", "first", "last", "min", "max", "trend")
		type plateau struct {
			field    string
			length   int
			fromIter int64
		}
		var plateaus []plateau
		for _, f := range fields {
			iters, vals := fieldSeries(evs, f)
			if len(vals) == 0 {
				continue
			}
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			fmt.Fprintf(&b, "  %-14s %12.5g %12.5g %12.5g %12.5g  %s\n",
				f, vals[0], vals[len(vals)-1], lo, hi, sparkline(vals, 24))
			if n, at := longestPlateau(vals, tolPct/100); n >= plateauRun {
				plateaus = append(plateaus, plateau{f, n, iters[at]})
			}
		}
		for _, p := range plateaus {
			fmt.Fprintf(&b, "  plateau: %s changed <%.3g%% over %d consecutive events (from iter %d) — possible stagnation\n",
				p.field, tolPct, p.length, p.fromIter)
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// fieldSeries extracts field f's values (and their iteration numbers) in
// event order, skipping events without the field and non-finite values.
func fieldSeries(evs []probeEvent, f string) (iters []int64, vals []float64) {
	for _, e := range evs {
		v, ok := e.F[f]
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		iters = append(iters, e.Iter)
		vals = append(vals, v)
	}
	return iters, vals
}

// longestPlateau finds the longest run of consecutive values whose
// step-to-step relative change stays within tol. Returns the run length in
// events and its start index; (1, 0) means no two consecutive values were
// stagnant.
func longestPlateau(vals []float64, tol float64) (length, start int) {
	best, bestAt := 1, 0
	cur, curAt := 1, 0
	for i := 1; i < len(vals); i++ {
		scale := math.Max(math.Abs(vals[i-1]), math.Abs(vals[i]))
		if math.Abs(vals[i]-vals[i-1]) <= tol*scale {
			cur++
		} else {
			cur, curAt = 1, i
		}
		if cur > best {
			best, bestAt = cur, curAt
		}
	}
	return best, bestAt
}

// sparkline renders vals as a fixed-width block-character trend, sampled
// evenly when the series is longer than width.
func sparkline(vals []float64, width int) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	n := len(vals)
	if n > width {
		sampled := make([]float64, width)
		for i := range sampled {
			sampled[i] = vals[i*(n-1)/(width-1)]
		}
		vals, n = sampled, width
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	out := make([]rune, n)
	span := hi - lo
	for i, v := range vals {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(levels)-1))
		}
		out[i] = levels[idx]
	}
	return string(out)
}
