package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	//lint:ignore persist-writes test fixture in t.TempDir; durability machinery would only add fsync noise
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const metricsJSON = `{
  "counters": {"linalg.matvecs": 1200, "mincut.flows": 40},
  "gauges": {"wall_seconds": 2.5},
  "timers": {
    "span.core.spectral_bound": {"count": 5, "total_ns": 1000000, "min_ns": 100000, "max_ns": 400000, "avg_ns": 200000},
    "span.core.spectral_bound/eigensolve": {"count": 5, "total_ns": 800000, "min_ns": 80000, "max_ns": 300000, "avg_ns": 160000}
  },
  "hists": {
    "core.boundk_ns": {"count": 500, "sum": 100000, "min": 50, "max": 900, "mean": 200, "p50": 180, "p90": 600, "p99": 880}
  }
}`

const traceJSON = `{"traceEvents":[
{"name":"core.spectral_bound","cat":"obs","ph":"X","ts":0.000,"dur":1000.000,"pid":1,"tid":1,"args":{}},
{"name":"core.spectral_bound/eigensolve","cat":"obs","ph":"X","ts":10.000,"dur":800.000,"pid":1,"tid":1,"args":{}}
],"displayTimeUnit":"ns"}`

const benchOldJSON = `{"BenchmarkBound": {"iterations": 3, "ns_per_op": 1000000, "allocs_per_op": 10},
"BenchmarkSweep": {"iterations": 3, "ns_per_op": 500000}}`

const benchNewRegressedJSON = `{"BenchmarkBound": {"iterations": 3, "ns_per_op": 1500000, "allocs_per_op": 10},
"BenchmarkSweep": {"iterations": 3, "ns_per_op": 510000}}`

func TestLoadDetectsFormats(t *testing.T) {
	cases := []struct {
		content string
		kind    string
	}{
		{metricsJSON, "metrics"},
		{traceJSON, "trace"},
		{benchOldJSON, "bench"},
	}
	for _, c := range cases {
		in, err := load(write(t, "in.json", c.content))
		if err != nil {
			t.Fatalf("load(%s): %v", c.kind, err)
		}
		if in.kind != c.kind {
			t.Errorf("kind = %q, want %q", in.kind, c.kind)
		}
	}
	if _, err := load(write(t, "bad.json", `{"what": "ever"}`)); err == nil {
		t.Error("expected an error for an unrecognized JSON object")
	}
}

func TestMetricsInputBuildsSpansAndValues(t *testing.T) {
	in, err := load(write(t, "m.json", metricsJSON))
	if err != nil {
		t.Fatal(err)
	}
	if agg := in.spans["core.spectral_bound"]; agg.count != 5 || agg.totalNS != 1000000 {
		t.Errorf("span agg = %+v", agg)
	}
	if v := in.values["hist:core.boundk_ns.p50"]; v != 180 {
		t.Errorf("hist p50 value = %g", v)
	}
	if !in.timeLike["hist:core.boundk_ns.p50"] || !in.timeLike["timer:span.core.spectral_bound.avg_ns"] {
		t.Error("time-like flags missing")
	}
	if in.timeLike["counter:linalg.matvecs"] {
		t.Error("counters must not be time-like")
	}
}

func TestTraceInputAggregatesEvents(t *testing.T) {
	in, err := load(write(t, "t.json", traceJSON))
	if err != nil {
		t.Fatal(err)
	}
	if agg := in.spans["core.spectral_bound"]; agg.count != 1 || agg.totalNS != 1000000 {
		t.Errorf("trace span agg = %+v", agg)
	}
}

func TestBuildTreeSelfTime(t *testing.T) {
	root := buildTree(map[string]spanAgg{
		"a":   {count: 1, totalNS: 100},
		"a/b": {count: 2, totalNS: 60},
		"a/c": {count: 1, totalNS: 30},
	})
	a := root.children["a"]
	if a == nil {
		t.Fatal("node a missing")
	}
	if self := a.selfNS(); self != 10 {
		t.Errorf("a self = %d, want 10", self)
	}
	if b := a.children["b"]; b == nil || b.selfNS() != 60 {
		t.Errorf("leaf self wrong: %+v", b)
	}
	kids := a.childrenByTotal()
	if len(kids) != 2 || kids[0].name != "b" {
		t.Errorf("children not sorted by total: %+v", kids)
	}
}

func TestReportRendersAllSections(t *testing.T) {
	in, err := load(write(t, "m.json", metricsJSON))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := report(&b, in, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"phase tree", "core.spectral_bound", "eigensolve",
		"counters", "linalg.matvecs", "gauges", "wall_seconds",
		"histograms", "core.boundk_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareCountsRegressions(t *testing.T) {
	old, err := load(write(t, "old.json", benchOldJSON))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := load(write(t, "new.json", benchNewRegressedJSON))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	// BenchmarkBound regressed +50%, BenchmarkSweep +2%: one offender at
	// a 20% gate, none at a 100% gate.
	regressed, err := compare(&b, old, cur, 20)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Errorf("regressed = %d, want 1\n%s", regressed, b.String())
	}
	if !strings.Contains(b.String(), "!") {
		t.Errorf("regression not marked:\n%s", b.String())
	}
	b.Reset()
	if regressed, err = compare(&b, old, cur, 100); err != nil || regressed != 0 {
		t.Errorf("regressed at 100%% = %d (err %v), want 0", regressed, err)
	}
	// Improvements never count as regressions.
	b.Reset()
	if regressed, err = compare(&b, cur, old, 20); err != nil || regressed != 0 {
		t.Errorf("improvement counted as regression: %d (err %v)", regressed, err)
	}
}

func TestCompareDisjointInputsErrors(t *testing.T) {
	a, err := load(write(t, "a.json", `{"BenchmarkA": {"iterations": 1, "ns_per_op": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := load(write(t, "b.json", `{"BenchmarkB": {"iterations": 1, "ns_per_op": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := compare(&out, a, b, 0); err == nil {
		t.Error("expected an error for inputs with no common metrics")
	}
}
