package main

// The trend subcommand reads the multi-run benchmark ledger that
// `benchjson -history` appends to (results/bench_history.jsonl, a persist
// journal of bench_run records) and compares the latest run against the
// median of the prior runs, per benchmark, with an oldest→newest sparkline.
// With -fail-over PCT the exit code becomes 1 when any benchmark's latest
// ns/op exceeds that median by more than PCT percent — the gate behind
// `make bench-history`.
//
//	obsreport trend results/bench_history.jsonl
//	obsreport trend -n 20 -fail-over 10 results/bench_history.jsonl

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"graphio/internal/persist"
)

// defaultHistoryPath is where `make bench-history` keeps the ledger.
const defaultHistoryPath = "results/bench_history.jsonl"

// benchRun mirrors one ledger record written by `benchjson -history`.
type benchRun struct {
	Kind       string             `json:"kind"`
	Time       string             `json:"time"`
	GitRev     string             `json:"git_rev"`
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	ConfigHash string             `json:"config_hash"`
	Benches    map[string]float64 `json:"benches"`
}

func trendMain(args []string) int {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	n := fs.Int("n", 10, "how many most-recent runs to consider")
	failOver := fs.Float64("fail-over", 0, "exit 1 when a benchmark's latest ns/op exceeds the prior-run median by more than this percent (0 = report only)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsreport trend [-n N] [-fail-over PCT] [HISTORY.jsonl]   (default %s)\n", defaultHistoryPath)
		fs.PrintDefaults()
	}
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error here
	path := defaultHistoryPath
	switch fs.NArg() {
	case 0:
	case 1:
		path = fs.Arg(0)
	default:
		fs.Usage()
		return 2
	}
	regressed, err := runTrend(os.Stdout, path, *n, *failOver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsreport trend: %v\n", err)
		return 1
	}
	if *failOver > 0 && regressed > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed more than %.0f%% vs the prior-run median\n", regressed, *failOver)
		return 1
	}
	return 0
}

// runTrend renders the ledger report and returns how many benchmarks
// regressed past failOver percent versus the median of the prior runs.
// Fewer than two runs is a report, not an error: the ledger is useful from
// its very first append.
func runTrend(w io.Writer, path string, n int, failOver float64) (int, error) {
	records, err := persist.ReadJournal(path)
	if err != nil {
		return 0, err
	}
	var runs []benchRun
	for _, raw := range records {
		var r benchRun
		if err := json.Unmarshal(raw, &r); err == nil && r.Kind == "bench_run" && len(r.Benches) > 0 {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		return 0, fmt.Errorf("%s: no bench_run records (append some with `benchjson -history %s`)", path, path)
	}
	if n > 0 && len(runs) > n {
		runs = runs[len(runs)-n:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d run(s)\n", path, len(runs))
	for i, r := range runs {
		mark := ""
		if i == len(runs)-1 {
			mark = "  (latest)"
		}
		fmt.Fprintf(&b, "  %3d  %-20s  rev %-12s %s/%s %s%s\n", i-len(runs)+1, r.Time, r.GitRev, r.GOOS, r.GOARCH, r.Go, mark)
	}
	latest := runs[len(runs)-1]
	if len(runs) < 2 {
		fmt.Fprintf(&b, "\nonly one run in the window — nothing to compare against yet\n")
		for _, name := range sortedKeys(latest.Benches) {
			fmt.Fprintf(&b, "  %-44s %12s/op\n", name, fmtDur(int64(latest.Benches[name])))
		}
		_, err := io.WriteString(w, b.String())
		return 0, err
	}
	prior := runs[:len(runs)-1]
	fmt.Fprintf(&b, "\n%-44s %14s %14s %9s  %s\n", "benchmark", "median(prior)", "latest", "delta", "trend (oldest→newest)")
	regressed := 0
	for _, name := range sortedKeys(latest.Benches) {
		var priorVals, series []float64
		for _, r := range prior {
			if v, ok := r.Benches[name]; ok {
				priorVals = append(priorVals, v)
				series = append(series, v)
			}
		}
		series = append(series, latest.Benches[name])
		if len(priorVals) == 0 {
			fmt.Fprintf(&b, "%-44s %14s %14s %9s  (new)\n", name, "-", fmtDur(int64(latest.Benches[name])), "n/a")
			continue
		}
		med := median(priorVals)
		delta, has := deltaPct(med, latest.Benches[name])
		ds, mark := "n/a", ""
		if has {
			ds = fmt.Sprintf("%+.1f%%", delta)
			if failOver > 0 && delta > failOver {
				regressed++
				mark = "  !"
			}
		}
		fmt.Fprintf(&b, "%-44s %14s %14s %9s%s  %s\n",
			name, fmtDur(int64(med)), fmtDur(int64(latest.Benches[name])), ds, mark, sparkline(series, 24))
	}
	dropped := map[string]bool{}
	for _, r := range prior {
		for name := range r.Benches {
			if _, ok := latest.Benches[name]; !ok {
				dropped[name] = true
			}
		}
	}
	if len(dropped) > 0 {
		fmt.Fprintf(&b, "(%d benchmark(s) from prior runs absent in the latest run)\n", len(dropped))
	}
	_, err = io.WriteString(w, b.String())
	return regressed, err
}

// median of a non-empty slice; even lengths average the middle pair.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ { // insertion sort: windows are ≤ -n runs long
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
