package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/persist"
)

// writeEventJournal commits the given payloads as a CRC-framed event
// journal, the same shape obs.DumpEvents produces.
func writeEventJournal(t *testing.T, recs ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.events.jsonl")
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// convergenceEvents is a handcrafted two-probe run: a Lanczos residual
// that decays then stalls (a plateau), and a short Dinic phase sequence.
var convergenceEvents = []string{
	`{"probe":"linalg.lanczos","iter":0,"t_ns":0,"f":{"resid":0.5,"locked":0}}`,
	`{"probe":"linalg.lanczos","iter":1,"t_ns":1000000,"f":{"resid":0.25,"locked":0}}`,
	`{"probe":"linalg.lanczos","iter":2,"t_ns":2000000,"f":{"resid":0.12,"locked":1}}`,
	`{"probe":"linalg.lanczos","iter":3,"t_ns":3000000,"f":{"resid":0.06,"locked":2}}`,
	`{"probe":"linalg.lanczos","iter":4,"t_ns":4000000,"f":{"resid":0.05,"locked":2}}`,
	`{"probe":"linalg.lanczos","iter":5,"t_ns":5000000,"f":{"resid":0.0499,"locked":2}}`,
	`{"probe":"linalg.lanczos","iter":6,"t_ns":6000000,"f":{"resid":0.0498,"locked":2}}`,
	`{"probe":"linalg.lanczos","iter":7,"t_ns":7000000,"f":{"resid":0.0498,"locked":2}}`,
	`{"probe":"maxflow.dinic","iter":0,"t_ns":7500000,"f":{"paths":5,"flow":12}}`,
	`{"probe":"maxflow.dinic","iter":1,"t_ns":8500000,"f":{"paths":2,"flow":15}}`,
	`{"probe":"maxflow.dinic","iter":2,"t_ns":9500000,"f":{"paths":1,"flow":16}}`,
}

func TestConvergenceGolden(t *testing.T) {
	path := writeEventJournal(t, convergenceEvents...)
	var buf bytes.Buffer
	if err := runConvergence(&buf, path, "", 1.0, 3); err != nil {
		t.Fatal(err)
	}
	// The header echoes the (temp) input path; normalize it for the golden.
	got := strings.Replace(buf.String(), path, "run.events.jsonl", 1)
	goldenPath := filepath.Join("testdata", "convergence.golden")
	if os.Getenv("OBSREPORT_UPDATE_GOLDEN") != "" {
		//lint:ignore persist-writes golden regeneration is a developer action, not runtime persistence
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with OBSREPORT_UPDATE_GOLDEN=1 go test ./cmd/obsreport/)", err)
	}
	if got != string(want) {
		t.Errorf("convergence report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestConvergenceProbeFilter(t *testing.T) {
	path := writeEventJournal(t, convergenceEvents...)
	var buf bytes.Buffer
	if err := runConvergence(&buf, path, "maxflow.dinic", 1.0, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "linalg.lanczos") {
		t.Errorf("-probe maxflow.dinic still reported lanczos:\n%s", out)
	}
	if !strings.Contains(out, "probe maxflow.dinic: 3 events") {
		t.Errorf("filtered report missing dinic summary:\n%s", out)
	}
	if err := runConvergence(&buf, path, "nosuch.probe", 1.0, 5); err == nil {
		t.Error("unknown probe name should error, not print an empty report")
	}
}

func TestConvergencePlateauDetection(t *testing.T) {
	vals := []float64{1, 0.5, 0.25, 0.249, 0.2485, 0.2481, 0.12}
	n, at := longestPlateau(vals, 0.01)
	if n != 4 || at != 2 {
		t.Errorf("longestPlateau = (%d, %d), want (4, 2)", n, at)
	}
	if n, _ := longestPlateau([]float64{1, 2, 4, 8}, 0.01); n != 1 {
		t.Errorf("strictly-moving series flagged a plateau of %d", n)
	}
	// All-zero series: stagnant by definition, not a divide-by-zero.
	if n, _ := longestPlateau([]float64{0, 0, 0}, 0.01); n != 3 {
		t.Errorf("zero series plateau = %d, want 3", n)
	}
}

func TestConvergenceRejectsEmptyAndMissing(t *testing.T) {
	var buf bytes.Buffer
	if err := runConvergence(&buf, filepath.Join(t.TempDir(), "absent.jsonl"), "", 1.0, 5); err == nil {
		t.Error("missing event file should error")
	}
	path := writeEventJournal(t, `{"kind":"not_an_event"}`)
	if err := runConvergence(&buf, path, "", 1.0, 5); err == nil {
		t.Error("journal without probe events should error")
	}
}
