// Command graphiod serves spectral I/O lower bounds over HTTP: clients
// upload computation graphs (or name generator specs like fft:10), jobs
// run asynchronously on a bounded worker pool under per-job deadlines, and
// results are cached content-addressed so identical queries are free. The
// job queue is WAL-backed: a SIGKILLed daemon restarted on the same -data
// dir replays its journal and finishes every job it had accepted.
//
//	graphiod -data /var/lib/graphiod -addr :8080         # serve
//	graphiod submit -server http://localhost:8080 -spec fft:10 -m 64
//	graphiod wait   -server http://localhost:8080 -id j000000
//	graphiod metrics -server http://localhost:8080
//
// The first SIGINT/SIGTERM drains: admission stops (readyz goes 503),
// in-flight jobs finish and are journaled, queued jobs stay in the WAL for
// the next start. A second signal hard-stops. Set -auth-token (or
// GRAPHIO_TOKEN) to require a bearer token on every endpoint except the
// health probes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"graphio/internal/graph"
	"graphio/internal/graphiod"
	"graphio/internal/obs"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit":
			os.Exit(cmdSubmit(os.Args[2:]))
		case "wait":
			os.Exit(cmdWait(os.Args[2:]))
		case "metrics":
			os.Exit(cmdMetrics(os.Args[2:]))
		}
	}
	os.Exit(serve())
}

func serve() int {
	addr := flag.String("addr", "127.0.0.1:8080", "host:port to serve the API on (':0' picks a free port)")
	dataDir := flag.String("data", "", "data directory for the WAL, uploaded graphs, and result artifacts (required)")
	workers := flag.Int("workers", 2, "bound-computation worker pool size")
	queueCap := flag.Int("queue-cap", 256, "max queued jobs before submissions get 429 + Retry-After")
	clientCap := flag.Int("client-inflight", 16, "max queued+running jobs per client")
	hostCap := flag.Int("host-inflight", 0, "max queued+running jobs per remote address, across client names (0 = 4x -client-inflight)")
	retainJobs := flag.Int("retain-jobs", 4096, "terminal jobs kept in the status table and the compacted WAL; the oldest beyond this are forgotten (their cached artifacts survive)")
	artifactTTL := flag.Duration("artifact-ttl", 0, "expire cached result artifacts this much older than their last write, once their status row is pruned; swept on startup and hourly (0 keeps them forever)")
	maxGraphBytes := flag.Int64("max-graph-bytes", graph.DefaultReadLimit, "uploaded graph JSON size cap; larger uploads get a structured 413")
	maxVertices := flag.Int("max-vertices", 1<<22, "vertex cap for generated and uploaded graphs")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "default per-job deadline; a stalled solve fails typed 'deadline' at this point")
	maxJobTimeout := flag.Duration("max-job-timeout", 10*time.Minute, "cap on the per-job deadline a request may ask for")
	authToken := flag.String("auth-token", os.Getenv("GRAPHIO_TOKEN"), "require 'Authorization: Bearer <token>' on the API (default $GRAPHIO_TOKEN; empty disables auth)")
	memSoftLimit := flag.Int64("mem-soft-limit", 0, "heap bytes above which the lowest-priority queued jobs are shed (0 disables shedding)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before hard-stopping")
	ofl := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "graphiod: -data is required")
		return 2
	}
	if err := ofl.Begin(); err != nil {
		fmt.Fprintf(os.Stderr, "graphiod: %v\n", err)
		return 1
	}
	// The daemon serves /metrics itself; metrics are always on.
	obs.Enable(true)
	finish := func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "graphiod: %v\n", err)
		}
	}

	srv, err := graphiod.New(graphiod.Config{
		DataDir:        *dataDir,
		Workers:        *workers,
		QueueCap:       *queueCap,
		ClientInFlight: *clientCap,
		HostInFlight:   *hostCap,
		RetainJobs:     *retainJobs,
		ArtifactTTL:    *artifactTTL,
		MaxGraphBytes:  *maxGraphBytes,
		MaxVertices:    *maxVertices,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxJobTimeout,
		AuthToken:      *authToken,
		MemSoftLimit:   *memSoftLimit,
		Log: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "graphiod: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiod: %v\n", err)
		finish()
		return 1
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		srv.Close()
		fmt.Fprintf(os.Stderr, "graphiod: %v\n", err)
		finish()
		return 1
	}
	// Scripts parse this line for the bound address (':0' picks a port).
	fmt.Printf("graphiod listening on %s\n", bound)

	// Block until the first SIGINT/SIGTERM (or -timeout) cancels the obs
	// context, then drain: stop admission, finish in-flight jobs, leave
	// queued jobs journaled for the next start. The obs bundle's own
	// second-signal handler covers the hard stop.
	<-ofl.Context().Done()
	fmt.Fprintln(os.Stderr, "graphiod: draining (in-flight jobs finish; queued jobs stay journaled)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	err = srv.Drain(drainCtx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiod: %v; hard-stopping\n", err)
	}
	srv.Close()
	finish()
	if err != nil {
		return 1
	}
	return 0
}

// api wraps the three client subcommands' shared HTTP plumbing.
type api struct {
	server string
	token  string
	client *http.Client
}

func addClientFlags(fs *flag.FlagSet) (*string, *string) {
	server := fs.String("server", "http://127.0.0.1:8080", "graphiod base URL")
	token := fs.String("token", os.Getenv("GRAPHIO_TOKEN"), "bearer token (default $GRAPHIO_TOKEN)")
	return server, token
}

func (a *api) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, strings.TrimSuffix(a.server, "/")+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if a.token != "" {
		req.Header.Set("Authorization", "Bearer "+a.token)
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// jobLine renders a job response in the key=value form the verify script
// parses.
func jobLine(j graphiod.JobInfo) string {
	line := fmt.Sprintf("id=%s key=%s status=%s cached=%v", j.ID, j.Key, j.Status, j.Cached)
	if j.ArtifactSHA != "" {
		line += " sha=" + j.ArtifactSHA
	}
	if j.Error != nil {
		line += fmt.Sprintf(" error=%s %q", j.Error.Kind, j.Error.Message)
	}
	return line
}

func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("graphiod submit", flag.ExitOnError)
	server, token := addClientFlags(fs)
	spec := fs.String("spec", "", "generator spec, e.g. fft:10, hypercube:12")
	graphFile := fs.String("graph", "", "upload this graph JSON file instead of a spec")
	m := fs.Int("m", 0, "fast-memory size (required)")
	maxK := fs.Int("max-k", 0, "eigenvalue budget h (daemon default if 0)")
	solver := fs.String("solver", "", "eigensolver: auto|dense|lanczos|power|chebyshev")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	client := fs.String("client", "", "client name for per-client limits (default: remote address)")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job deadline in ms (daemon default if 0)")
	_ = fs.Parse(args)

	req := graphiod.JobRequest{
		Spec: *spec, M: *m, MaxK: *maxK, Solver: *solver,
		Priority: *priority, Client: *client, TimeoutMS: *timeoutMS,
	}
	if *graphFile != "" {
		data, err := os.ReadFile(*graphFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphiod submit: %v\n", err)
			return 1
		}
		req.Graph = json.RawMessage(data)
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiod submit: %v\n", err)
		return 1
	}
	a := &api{server: *server, token: *token, client: http.DefaultClient}
	status, data, err := a.do(http.MethodPost, "/v1/jobs", body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiod submit: %v\n", err)
		return 1
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "graphiod submit: HTTP %d: %s\n", status, strings.TrimSpace(string(data)))
		return 1
	}
	var resp graphiod.SubmitResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "graphiod submit: bad response: %v\n", err)
		return 1
	}
	fmt.Println(jobLine(resp.JobInfo))
	return 0
}

func cmdWait(args []string) int {
	fs := flag.NewFlagSet("graphiod wait", flag.ExitOnError)
	server, token := addClientFlags(fs)
	ids := fs.String("id", "", "comma-separated job IDs to wait for (required)")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up after this long")
	_ = fs.Parse(args)
	if *ids == "" {
		fmt.Fprintln(os.Stderr, "graphiod wait: -id is required")
		return 2
	}
	a := &api{server: *server, token: *token, client: http.DefaultClient}
	pending := map[string]bool{}
	for _, id := range strings.Split(*ids, ",") {
		if id = strings.TrimSpace(id); id != "" {
			pending[id] = true
		}
	}
	allDone := true
	start := obs.Now()
	for len(pending) > 0 {
		if obs.Since(start) > *timeout {
			for id := range pending {
				fmt.Fprintf(os.Stderr, "graphiod wait: timed out waiting for %s\n", id)
			}
			return 1
		}
		for id := range pending {
			status, data, err := a.do(http.MethodGet, "/v1/jobs/"+id, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphiod wait: %v\n", err)
				return 1
			}
			if status != http.StatusOK {
				fmt.Fprintf(os.Stderr, "graphiod wait: %s: HTTP %d: %s\n", id, status, strings.TrimSpace(string(data)))
				return 1
			}
			var resp graphiod.SubmitResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				fmt.Fprintf(os.Stderr, "graphiod wait: bad response: %v\n", err)
				return 1
			}
			switch resp.Status {
			case graphiod.StateDone:
				fmt.Println(jobLine(resp.JobInfo))
				delete(pending, id)
			case graphiod.StateFailed, graphiod.StateShed:
				fmt.Println(jobLine(resp.JobInfo))
				delete(pending, id)
				allDone = false
			}
		}
		if len(pending) > 0 {
			timer := time.NewTimer(*poll)
			<-timer.C
		}
	}
	if !allDone {
		return 1
	}
	return 0
}

func cmdMetrics(args []string) int {
	fs := flag.NewFlagSet("graphiod metrics", flag.ExitOnError)
	server, token := addClientFlags(fs)
	_ = fs.Parse(args)
	a := &api{server: *server, token: *token, client: http.DefaultClient}
	status, data, err := a.do(http.MethodGet, "/metrics", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiod metrics: %v\n", err)
		return 1
	}
	if status != http.StatusOK {
		fmt.Fprintf(os.Stderr, "graphiod metrics: HTTP %d\n", status)
		return 1
	}
	os.Stdout.Write(data) //lint:ignore errcheck terminal output, conventionally unchecked like fmt
	return 0
}
