// Command graphiolint runs the repo's custom static-analysis pass
// (internal/lint) over package patterns and fails the build on findings.
//
// Usage:
//
//	graphiolint [-format text|json|sarif] [-o file] [-rules a,b]
//	            [-baseline file] [-write-baseline file] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape ("./...",
// "./internal/core", "internal/..."). Exit status: 0 clean (warn-tier
// findings are printed but do not fail), 1 error-tier findings, 2 usage
// or load error. Findings are suppressed in place with
//
//	//lint:ignore <rule> <reason>
//
// on or directly above the offending line; the reason is mandatory and a
// suppression that matches nothing is itself a finding. A baseline file
// (-write-baseline to create, -baseline to apply) freezes existing debt by
// (rule, file, message) so only new findings fail the gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"graphio/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("graphiolint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "shorthand for -format json")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	out := fs.String("o", "", "write findings to this file instead of stdout")
	rulesFlag := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	baselinePath := fs.String("baseline", "", "filter findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write surviving findings to this baseline file and exit 0")
	list := fs.Bool("list", false, "print the rule catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "graphiolint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	rules := lint.DefaultRules()
	if *list {
		for _, ri := range lint.CatalogInfo(rules) {
			fmt.Printf("%-18s %s\n", ri.Name, ri.Doc)
		}
		return 0
	}
	if *rulesFlag != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*rulesFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var subset []lint.Rule
		for _, r := range rules {
			if want[r.Name()] {
				subset = append(subset, r)
				delete(want, r.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "graphiolint: unknown rule %q (see -list)\n", name)
			return 2
		}
		rules = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}
	root, modpath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}

	runner := &lint.Runner{Loader: lint.NewLoader(root, modpath), Rules: rules}
	diags, err := runner.Run(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}

	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
			return 2
		}
		var suppressed int
		diags, suppressed = b.Filter(root, diags)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "graphiolint: %d finding(s) covered by baseline %s\n", suppressed, *baselinePath)
		}
	}

	if *writeBaseline != "" {
		//lint:ignore persist-writes a lint baseline is regenerable tool output, not a durable artifact; plain create keeps the linter free of the persist import cycle
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
			return 2
		}
		werr := lint.NewBaseline(root, diags).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "graphiolint: writing baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "graphiolint: baseline %s written (%d finding(s))\n", *writeBaseline, len(diags))
		return 0
	}

	dst := io.Writer(os.Stdout)
	if *out != "" {
		//lint:ignore persist-writes report output (-o) is regenerable tool output, not a durable artifact; plain create keeps the linter free of the persist import cycle
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "json":
		err = lint.WriteJSON(dst, diags)
	case "sarif":
		err = lint.WriteSARIF(dst, root, lint.CatalogInfo(rules), diags)
	default:
		err = lint.WriteText(dst, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}
	if errs := lint.CountErrors(diags); errs > 0 {
		fmt.Fprintf(os.Stderr, "graphiolint: %d finding(s), %d at the error tier\n", len(diags), errs)
		return 1
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "graphiolint: %d warning(s), gate passes\n", len(diags))
	}
	return 0
}
