// Command graphiolint runs the repo's custom static-analysis pass
// (internal/lint) over package patterns and fails the build on findings.
//
// Usage:
//
//	graphiolint [-json] [-rules a,b] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape ("./...",
// "./internal/core", "internal/..."). Exit status: 0 clean, 1 findings,
// 2 usage or load error. Findings are suppressed in place with
//
//	//lint:ignore <rule> <reason>
//
// on or directly above the offending line; the reason is mandatory and a
// suppression that matches nothing is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphio/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("graphiolint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	rulesFlag := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := fs.Bool("list", false, "print the rule catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-15s %s\n", r.Name(), r.Doc())
		}
		fmt.Printf("%-15s %s\n", lint.DirectiveRule, "meta: malformed or unknown-rule //lint:ignore directives")
		fmt.Printf("%-15s %s\n", lint.UnusedSuppRule, "meta: //lint:ignore directives that suppress nothing")
		return 0
	}
	if *rulesFlag != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*rulesFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var subset []lint.Rule
		for _, r := range rules {
			if want[r.Name()] {
				subset = append(subset, r)
				delete(want, r.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "graphiolint: unknown rule %q (see -list)\n", name)
			return 2
		}
		rules = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}
	root, modpath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}

	runner := &lint.Runner{Loader: lint.NewLoader(root, modpath), Rules: rules}
	diags, err := runner.Run(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		fmt.Fprintf(os.Stderr, "graphiolint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "graphiolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
