package main

import (
	"flag"
	"fmt"
	"time"

	"graphio/internal/core"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/obs"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

// cmdAnalyze runs the whole toolbox on one graph and prints a combined
// report: spectral bounds (both Laplacians, serial and parallel), the
// convex min-cut baseline, a concrete-order partition certificate
// (Theorem 2/3), and a simulated upper bound, bracketing J*.
func cmdAnalyze(args []string) (err error) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	load := graphFlags(fs)
	M := fs.Int("M", 16, "fast memory size in elements")
	maxK := fs.Int("k", 100, "eigenvalues computed / top of the k sweep")
	samples := fs.Int("samples", 20, "random orders for the upper-bound search")
	mcTimeout := fs.Duration("mincut-timeout", 30*time.Second, "time box for the baseline sweep")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	ctx := ofl.Context()
	g, err := load()
	if err != nil {
		return err
	}
	fmt.Printf("graph        %s: n=%d, m=%d, sources=%d, sinks=%d\n",
		g.Name(), g.N(), g.M(), len(g.Sources()), len(g.Sinks()))
	fmt.Printf("degrees      max in=%d, max out=%d\n", g.MaxInDeg(), g.MaxOutDeg())
	if g.MaxInDeg() > *M {
		return fmt.Errorf("max in-degree %d exceeds M=%d: no evaluation order is feasible", g.MaxInDeg(), *M)
	}

	t4, err := core.SpectralBoundContext(ctx, g, core.Options{M: *M, MaxK: *maxK})
	if err != nil {
		return err
	}
	t5, err := core.SpectralBoundContext(ctx, g, core.Options{M: *M, MaxK: *maxK, Laplacian: laplacian.Original})
	if err != nil {
		return err
	}
	fmt.Printf("spectral     Theorem 4: %.2f (k=%d)   Theorem 5: %.2f (k=%d)   [solver %v, h=%d]\n",
		t4.Bound, t4.BestK, t5.Bound, t5.BestK, t4.SolverUsed, len(t4.Eigenvalues))
	for _, p := range []int{2, 4} {
		b, _, _ := core.BoundFromEigenvalues(t4.Eigenvalues, g.N(), *M, p, 1)
		fmt.Printf("parallel     p=%d (Theorem 6): %.2f\n", p, b)
	}

	mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: *M, Timeout: *mcTimeout})
	if err != nil {
		return err
	}
	note := ""
	if mc.TimedOut {
		note = " (timed out: bound may be below the baseline's maximum)"
	}
	fmt.Printf("min-cut      %.2f, C(v*)=%d at vertex %d, %d flows in %v%s\n",
		mc.Bound, mc.BestCut, mc.BestVertex, mc.Evaluated, mc.Elapsed.Round(time.Millisecond), note)

	ub, order, name, err := pebble.BestOrderContext(ctx, g, *M, pebble.Belady, *samples, 1)
	if err != nil {
		return err
	}
	fmt.Printf("simulated    %d I/Os (reads=%d, writes=%d) with the %q order under Belady\n",
		ub.Total(), ub.Reads, ub.Writes, name)
	pc, pk, err := core.BestPartitionBound(g, order, *maxK, *M, laplacian.OutDegreeNormalized)
	if err != nil {
		return err
	}
	fmt.Printf("certificate  Lemma 1 partition bound for that order: %.2f (k=%d)\n", pc, pk)

	lower := t4.Bound
	if t5.Bound > lower {
		lower = t5.Bound
	}
	if mc.Bound > lower {
		lower = mc.Bound
	}
	if g.N() <= 16 {
		if exact, err := redblue.OptimalContext(ctx, g, *M, redblue.Options{}); err == nil {
			fmt.Printf("exact        J* = %d (red-blue state search, %d states)\n",
				exact.IO, exact.States)
			fmt.Printf("\nJ* bracket:  %.2f ≤ J* = %d ≤ %d   (M=%d)\n",
				lower, exact.IO, ub.Total(), *M)
			return nil
		}
	}
	fmt.Printf("\nJ* bracket:  %.2f ≤ J* ≤ %d   (M=%d)\n", lower, ub.Total(), *M)
	return nil
}
