// Command specio computes spectral I/O lower bounds for computation
// graphs: the command-line face of the library.
//
// Usage:
//
//	specio gen      -graph fft -size 5 -format dot          # emit a graph
//	specio bound    -graph bhk -size 10 -M 16               # spectral bound
//	specio bound    -in g.json -M 8 -laplacian original -p 4
//	specio spectrum -graph fft -size 6 -k 12                # eigenvalues
//	specio mincut   -graph fft -size 5 -M 8 -timeout 30s    # baseline bound
//	specio simulate -graph matmul -size 4 -M 16 -samples 20 # upper bound
//
// Built-in generators: fft, matmul, matmul-nary, strassen, bhk, er,
// inner, chain, tree, grid (grid uses -size for both dimensions). Graphs
// can also be read from -in (JSON, as produced by gen -format json).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/obs"
	"graphio/internal/pebble"
	"graphio/internal/persist"
)

// finishObs flushes the observability bundle (profiles, metrics dump) and
// folds any flush error into the command's return value. Commands use it as
//
//	defer finishObs(ofl, &err)
//
// with a named error return, so metrics are written even on failure paths.
func finishObs(c *obs.CLI, err *error) {
	if ferr := c.Finish(); *err == nil {
		*err = ferr
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "bound":
		err = cmdBound(os.Args[2:])
	case "spectrum":
		err = cmdSpectrum(os.Args[2:])
	case "mincut":
		err = cmdMinCut(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "exact":
		err = cmdExact(os.Args[2:])
	case "expansion":
		err = cmdExpansion(os.Args[2:])
	case "hier":
		err = cmdHier(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "specio: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "specio: %v\n", err)
		// Interrupt and wall-clock budget wind down through the pipeline
		// context; exit with the conventional interrupted/timeout statuses.
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(124)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `specio <command> [flags]

commands:
  gen       emit a generated computation graph (JSON or DOT)
  bound     compute the spectral I/O lower bound (Theorems 4/5/6)
  spectrum  print the smallest Laplacian eigenvalues
  mincut    compute the convex min-cut baseline bound
  simulate  simulate evaluation orders and report the best I/O found
  analyze   run every method on one graph and bracket J*
  exact     exact optimal J* by red-blue pebble search (tiny graphs)
  expansion edge-expansion report: λ2, Cheeger interval, sweep cut
  hier      multi-level hierarchy: per-boundary floors vs simulated traffic

run 'specio <command> -h' for the command's flags`)
}

// graphFlags adds the shared graph-selection flags to fs and returns a
// loader to call after parsing.
func graphFlags(fs *flag.FlagSet) func() (*graph.Graph, error) {
	name := fs.String("graph", "", "generator: fft|matmul|matmul-nary|strassen|bhk|er|inner|chain|tree|grid")
	size := fs.Int("size", 4, "generator size parameter (l for fft/bhk/tree, n otherwise)")
	p := fs.Float64("er-p", 0.1, "edge probability for -graph er")
	seed := fs.Int64("er-seed", 1, "random seed for -graph er")
	in := fs.String("in", "", "read a JSON graph from this file instead of generating")
	return func() (*graph.Graph, error) {
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ReadJSON(f)
		}
		switch strings.ToLower(*name) {
		case "fft":
			return gen.FFT(*size), nil
		case "matmul":
			return gen.NaiveMatMul(*size), nil
		case "matmul-nary":
			return gen.NaiveMatMulNary(*size), nil
		case "strassen":
			return gen.Strassen(*size), nil
		case "bhk", "hypercube", "tsp":
			return gen.BellmanHeldKarp(*size), nil
		case "er":
			return gen.ErdosRenyiDAG(*size, *p, *seed), nil
		case "inner":
			return gen.InnerProduct(*size), nil
		case "chain":
			return gen.Chain(*size), nil
		case "tree":
			return gen.BinaryTreeReduce(*size), nil
		case "grid":
			return gen.Grid2D(*size, *size), nil
		case "":
			return nil, fmt.Errorf("one of -graph or -in is required")
		default:
			return nil, fmt.Errorf("unknown generator %q", *name)
		}
	}
}

func cmdGen(args []string) (err error) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	load := graphFlags(fs)
	format := fs.String("format", "json", "output format: json|dot")
	out := fs.String("o", "", "output file (default stdout)")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	write := func(w io.Writer) error {
		switch *format {
		case "json":
			return g.WriteJSON(w)
		case "dot":
			return g.WriteDOT(w)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *out == "" {
		return write(os.Stdout)
	}
	// Commit atomically: an interrupted or failed render must not replace
	// (or half-write) an existing graph file.
	return persist.WriteTo(*out, write)
}

func parseKind(s string) (laplacian.Kind, error) {
	switch strings.ToLower(s) {
	case "normalized", "t4", "theorem4":
		return laplacian.OutDegreeNormalized, nil
	case "original", "t5", "theorem5":
		return laplacian.Original, nil
	default:
		return 0, fmt.Errorf("unknown laplacian %q (want normalized|original)", s)
	}
}

func parseSolver(s string) (core.Solver, error) {
	switch strings.ToLower(s) {
	case "auto":
		return core.SolverAuto, nil
	case "dense":
		return core.SolverDense, nil
	case "lanczos":
		return core.SolverLanczos, nil
	case "power":
		return core.SolverPower, nil
	case "chebyshev", "cheb":
		return core.SolverChebyshev, nil
	default:
		return 0, fmt.Errorf("unknown solver %q (want auto|dense|lanczos|power|chebyshev)", s)
	}
}

func cmdBound(args []string) (err error) {
	fs := flag.NewFlagSet("bound", flag.ExitOnError)
	load := graphFlags(fs)
	M := fs.Int("M", 16, "fast memory size in elements")
	maxK := fs.Int("k", 100, "number of eigenvalues / top of the k sweep (h)")
	lap := fs.String("laplacian", "normalized", "normalized (Theorem 4) or original (Theorem 5)")
	procs := fs.Int("p", 1, "processors (Theorem 6 when > 1)")
	solver := fs.String("solver", "auto", "eigensolver: auto|dense|lanczos|power")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	kind, err := parseKind(*lap)
	if err != nil {
		return err
	}
	sol, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	start := obs.Now()
	res, err := core.SpectralBoundContext(ofl.Context(), g, core.Options{
		M: *M, MaxK: *maxK, Laplacian: kind, Processors: *procs, Solver: sol,
	})
	if err != nil {
		return err
	}
	elapsed := obs.Since(start)
	fmt.Printf("graph       %s (n=%d, m=%d, max in-deg=%d, max out-deg=%d)\n",
		g.Name(), g.N(), g.M(), g.MaxInDeg(), g.MaxOutDeg())
	fmt.Printf("laplacian   %v   solver %v   h=%d   M=%d   p=%d\n",
		res.Kind, res.SolverUsed, len(res.Eigenvalues), res.M, res.Processors)
	fmt.Printf("bound       %.4f   (best k=%d, raw=%.4f)\n", res.Bound, res.BestK, res.Raw)
	fmt.Printf("elapsed     %v\n", elapsed)
	if res.Degraded {
		fmt.Printf("degraded    the requested solver did not converge; the bound above is still valid\n")
		for _, f := range res.Fallbacks {
			fmt.Printf("            %s\n", f)
		}
	}
	if g.MaxInDeg() > *M {
		fmt.Printf("warning: max in-degree %d exceeds M=%d — no evaluation order is feasible at this M\n",
			g.MaxInDeg(), *M)
	}
	if ofl.Verbose {
		fmt.Println("k  lambda_k  bound(k)")
		for i, v := range res.PerK {
			fmt.Printf("%-3d %-9.5f %.4f\n", i+1, res.Eigenvalues[i], v)
		}
	}
	return nil
}

func cmdSpectrum(args []string) (err error) {
	fs := flag.NewFlagSet("spectrum", flag.ExitOnError)
	load := graphFlags(fs)
	maxK := fs.Int("k", 20, "how many of the smallest eigenvalues to print")
	lap := fs.String("laplacian", "normalized", "normalized or original")
	solver := fs.String("solver", "auto", "auto|dense|lanczos|power")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	kind, err := parseKind(*lap)
	if err != nil {
		return err
	}
	sol, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	res, err := core.SpectralBoundContext(ofl.Context(), g, core.Options{M: 1, MaxK: *maxK, Laplacian: kind, Solver: sol})
	if err != nil {
		return err
	}
	for i, v := range res.Eigenvalues {
		fmt.Printf("lambda_%d = %.8f\n", i+1, v)
	}
	return nil
}

func cmdMinCut(args []string) (err error) {
	fs := flag.NewFlagSet("mincut", flag.ExitOnError)
	load := graphFlags(fs)
	M := fs.Int("M", 16, "fast memory size in elements")
	timeout := fs.Duration("timeout", 0, "stop the per-vertex sweep after this long (0 = never)")
	maxV := fs.Int("max-vertices", 0, "evaluate at most this many vertices (0 = all)")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	res, err := mincut.ConvexMinCutBoundContext(ofl.Context(), g, mincut.Options{M: *M, Timeout: *timeout, MaxVertices: *maxV})
	if err != nil {
		return err
	}
	fmt.Printf("graph     %s (n=%d, m=%d)\n", g.Name(), g.N(), g.M())
	fmt.Printf("bound     %.1f   (C(v*)=%d at vertex %d; %d flows; %v",
		res.Bound, res.BestCut, res.BestVertex, res.Evaluated, res.Elapsed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Printf("; timed out")
	}
	if res.Interrupted {
		fmt.Printf("; interrupted")
	}
	fmt.Println(")")
	return nil
}

func cmdSimulate(args []string) (err error) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	load := graphFlags(fs)
	M := fs.Int("M", 16, "fast memory size in elements")
	policy := fs.String("policy", "belady", "eviction policy: lru|belady")
	samples := fs.Int("samples", 20, "random topological orders to try")
	seed := fs.Int64("order-seed", 1, "seed for the random order search")
	anneal := fs.Int("anneal", 0, "refine the best order with this many annealing steps")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	var pol pebble.Policy
	switch strings.ToLower(*policy) {
	case "lru":
		pol = pebble.LRU
	case "belady":
		pol = pebble.Belady
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	res, order, name, err := pebble.BestOrderContext(ofl.Context(), g, *M, pol, *samples, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph     %s (n=%d, m=%d)\n", g.Name(), g.N(), g.M())
	fmt.Printf("best I/O  %d  (reads=%d writes=%d, order=%s, policy=%v)\n",
		res.Total(), res.Reads, res.Writes, name, pol)
	if *anneal > 0 {
		_, annealed, err := pebble.AnnealContext(ofl.Context(), g, order, *M, pebble.AnnealOptions{
			Iters: *anneal, Seed: *seed, Policy: pol,
		})
		if err != nil {
			return err
		}
		fmt.Printf("annealed  %d  (reads=%d writes=%d, %d steps)\n",
			annealed.Total(), annealed.Reads, annealed.Writes, *anneal)
	}
	return nil
}
