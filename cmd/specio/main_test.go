package main

import (
	"flag"
	"testing"

	"graphio/internal/core"
	"graphio/internal/laplacian"
)

func TestParseKind(t *testing.T) {
	cases := map[string]laplacian.Kind{
		"normalized": laplacian.OutDegreeNormalized,
		"T4":         laplacian.OutDegreeNormalized,
		"theorem4":   laplacian.OutDegreeNormalized,
		"original":   laplacian.Original,
		"t5":         laplacian.Original,
	}
	for in, want := range cases {
		got, err := parseKind(in)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestParseSolver(t *testing.T) {
	cases := map[string]core.Solver{
		"auto": core.SolverAuto, "dense": core.SolverDense,
		"Lanczos": core.SolverLanczos, "POWER": core.SolverPower,
	}
	for in, want := range cases {
		got, err := parseSolver(in)
		if err != nil || got != want {
			t.Errorf("parseSolver(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSolver("qr"); err == nil {
		t.Error("bogus solver accepted")
	}
}

func loadWith(t *testing.T, args ...string) error {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	load := graphFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	_, err := load()
	return err
}

func TestGraphFlagsGenerators(t *testing.T) {
	for _, name := range []string{"fft", "matmul", "matmul-nary", "strassen", "bhk", "er", "inner", "chain", "tree", "grid"} {
		size := "4"
		if err := loadWith(t, "-graph", name, "-size", size); err != nil {
			t.Errorf("generator %q: %v", name, err)
		}
	}
	if err := loadWith(t, "-graph", "nope"); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := loadWith(t); err == nil {
		t.Error("missing -graph/-in accepted")
	}
}

func TestGraphFlagsAliases(t *testing.T) {
	for _, alias := range []string{"hypercube", "tsp"} {
		if err := loadWith(t, "-graph", alias, "-size", "3"); err != nil {
			t.Errorf("alias %q: %v", alias, err)
		}
	}
}
