package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"graphio/internal/core"
	"graphio/internal/expansion"
	"graphio/internal/hier"
	"graphio/internal/obs"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

// cmdExact runs the exact red-blue pebble solver (tiny graphs only) and
// reports the true J*.
func cmdExact(args []string) (err error) {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	load := graphFlags(fs)
	M := fs.Int("M", 2, "fast memory size in elements")
	maxStates := fs.Int("max-states", 0, "abort beyond this many search states (0 = default)")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	res, err := redblue.OptimalContext(ofl.Context(), g, *M, redblue.Options{MaxStates: *maxStates})
	if err != nil {
		return err
	}
	fmt.Printf("graph   %s (n=%d, m=%d)\n", g.Name(), g.N(), g.M())
	fmt.Printf("exact   J* = %d non-trivial I/Os at M=%d (%d states expanded)\n",
		res.IO, *M, res.States)
	return nil
}

// cmdHier analyzes a graph on a multi-level hierarchy: per-boundary
// Theorem 4 floors plus simulated traffic for two schedules.
func cmdHier(args []string) (err error) {
	fs := flag.NewFlagSet("hier", flag.ExitOnError)
	load := graphFlags(fs)
	capsFlag := fs.String("caps", "4,16,64", "comma-separated level capacities, fastest first")
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	var caps []int
	for _, part := range strings.Split(*capsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -caps entry %q: %w", part, err)
		}
		caps = append(caps, v)
	}
	floors, err := hier.Bounds(g, caps, core.Options{})
	if err != nil {
		return err
	}
	sim, err := hier.Simulate(g, pebble.FrontierOrder(g), caps)
	if err != nil {
		return err
	}
	fmt.Printf("graph  %s (n=%d, m=%d), levels %v\n", g.Name(), g.N(), g.M(), caps)
	cum := 0
	for i, c := range caps {
		cum += c
		fmt.Printf("boundary %d (cumulative M=%d): floor %10.2f ≤ simulated %d\n",
			i, cum, floors[i], sim.Transfers[i])
	}
	return nil
}

// cmdExpansion reports edge-expansion quantities: λ2, the Cheeger
// interval, the Fiedler sweep cut, and (for tiny graphs) the exact h(G).
func cmdExpansion(args []string) (err error) {
	fs := flag.NewFlagSet("expansion", flag.ExitOnError)
	load := graphFlags(fs)
	ofl := obs.AddFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return an error
	if err := ofl.Begin(); err != nil {
		return err
	}
	defer finishObs(ofl, &err)
	g, err := load()
	if err != nil {
		return err
	}
	l2, err := expansion.Lambda2(g)
	if err != nil {
		return err
	}
	lo, hi := expansion.CheegerInterval(l2, g.MaxDeg())
	fmt.Printf("graph       %s (n=%d, m=%d, max degree %d)\n", g.Name(), g.N(), g.M(), g.MaxDeg())
	fmt.Printf("lambda2     %.6f\n", l2)
	fmt.Printf("cheeger     %.6f ≤ h(G) ≤ %.6f\n", lo, hi)
	if sweep, err := expansion.SweepCut(g); err == nil {
		fmt.Printf("sweep cut   %.6f (a concrete cut's expansion)\n", sweep)
	}
	if g.N() <= 22 {
		h, err := expansion.Exact(g)
		if err != nil {
			return err
		}
		fmt.Printf("exact h(G)  %.6f\n", h)
	}
	return nil
}
