// Command benchjson converts `go test -bench` output into a JSON map of
// benchmark name to measured cost, for regression tracking across PRs:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH.json
//
// Lines that are not benchmark results (the goos/goarch header, PASS, ok)
// are ignored. The -N GOMAXPROCS suffix is stripped from names so results
// stay comparable across machines with different core counts.
//
// With -history PATH, the run is additionally appended to a multi-run
// trend ledger — one CRC-framed journal record per run carrying the git
// revision, toolchain/platform, a config hash over the benchmark set, and
// every benchmark's ns/op. `obsreport trend` compares the runs.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

// Result is one benchmark's parsed measurements. Fields beyond ns/op are
// present only when the corresponding -benchmem columns were in the input.
type Result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	in := flag.String("i", "", "input file (default stdin)")
	history := flag.String("history", "", "append this run to a bench trend ledger journal (render with `obsreport trend`)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	write := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	if *out == "" {
		if err := write(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := persist.WriteTo(*out, write); err != nil {
		// Atomic commit: a failed run leaves any previous BENCH.json intact.
		fatal(err)
	}
	if *history != "" {
		if err := appendHistory(*history, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: run appended to %s\n", *history)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks parsed\n", len(results))
}

// historyRecord is one bench trend ledger entry, shared with
// `obsreport trend` by shape.
type historyRecord struct {
	Kind       string             `json:"kind"`
	Time       string             `json:"time"`
	GitRev     string             `json:"git_rev"`
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	ConfigHash string             `json:"config_hash"`
	Benches    map[string]float64 `json:"benches"`
}

// appendHistory journals one bench_run record to path (creating parent
// directories as needed), so runs accumulate crash-safely across CI jobs.
func appendHistory(path string, results map[string]Result) error {
	if dir := filepath.Dir(path); dir != "." && dir != "/" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	benches := make(map[string]float64, len(results))
	for name, r := range results {
		benches[name] = r.NsPerOp
	}
	rec := historyRecord{
		Kind:       "bench_run",
		Time:       obs.Now().UTC().Format(time.RFC3339),
		GitRev:     gitRev(),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		ConfigHash: configHash(benches),
		Benches:    benches,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		return err
	}
	if err := j.Append(b); err != nil {
		_ = j.Close()
		return err
	}
	return j.Close()
}

// gitRev best-effort identifies the working tree; ledgers from exported
// tarballs just say unknown.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// configHash fingerprints what this run measured — the benchmark set and
// the platform — so obsreport trend can tell apples from oranges when a
// ledger spans machines or benchmark renames.
func configHash(benches map[string]float64) string {
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "%s/%s/%s\n", runtime.GOOS, runtime.GOARCH, runtime.Version())
	for _, name := range names {
		fmt.Fprintln(h, name)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// Parse reads `go test -bench` output and returns name → result. A repeated
// benchmark name (from -count > 1) keeps the fastest run.
func Parse(r io.Reader) (map[string]Result, error) {
	results := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, dup := results[name]; !dup || res.NsPerOp < prev.NsPerOp {
			results[name] = res
		}
	}
	return results, sc.Err()
}

// parseLine parses one `BenchmarkX-8   30   123 ns/op   45 B/op   6 allocs/op`
// line; ok is false for anything else.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	sawNs := false
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		}
	}
	if !sawNs {
		return "", Result{}, false
	}
	return name, res, true
}
