package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphio
BenchmarkBound-8                  3     41562341 ns/op    9437520 B/op       61 allocs/op
BenchmarkGraphBuildFFT10-8       12      9876543 ns/op
PASS
ok  	graphio	2.345s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	b, ok := got["BenchmarkBound"]
	if !ok {
		t.Fatalf("BenchmarkBound missing (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if b.Iterations != 3 || b.NsPerOp != 41562341 {
		t.Errorf("BenchmarkBound = %+v, want iters=3 ns/op=41562341", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 9437520 {
		t.Errorf("BytesPerOp = %v, want 9437520", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 61 {
		t.Errorf("AllocsPerOp = %v, want 61", b.AllocsPerOp)
	}
	g := got["BenchmarkGraphBuildFFT10"]
	if g.BytesPerOp != nil || g.AllocsPerOp != nil {
		t.Errorf("benchmem fields should be absent without -benchmem columns: %+v", g)
	}
}

func TestParseKeepsFastestDuplicate(t *testing.T) {
	in := "BenchmarkX-4  10  200 ns/op\nBenchmarkX-4  10  100 ns/op\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 100 {
		t.Errorf("ns/op = %v, want the fastest of the duplicate runs (100)", got["BenchmarkX"].NsPerOp)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok graphio 1s\nBenchmarkBad-8 x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results from noise input, got %v", got)
	}
}
