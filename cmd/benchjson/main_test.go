package main

import (
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

const sample = `goos: linux
goarch: amd64
pkg: graphio
BenchmarkBound-8                  3     41562341 ns/op    9437520 B/op       61 allocs/op
BenchmarkGraphBuildFFT10-8       12      9876543 ns/op
PASS
ok  	graphio	2.345s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	b, ok := got["BenchmarkBound"]
	if !ok {
		t.Fatalf("BenchmarkBound missing (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if b.Iterations != 3 || b.NsPerOp != 41562341 {
		t.Errorf("BenchmarkBound = %+v, want iters=3 ns/op=41562341", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 9437520 {
		t.Errorf("BytesPerOp = %v, want 9437520", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 61 {
		t.Errorf("AllocsPerOp = %v, want 61", b.AllocsPerOp)
	}
	g := got["BenchmarkGraphBuildFFT10"]
	if g.BytesPerOp != nil || g.AllocsPerOp != nil {
		t.Errorf("benchmem fields should be absent without -benchmem columns: %+v", g)
	}
}

func TestParseKeepsFastestDuplicate(t *testing.T) {
	in := "BenchmarkX-4  10  200 ns/op\nBenchmarkX-4  10  100 ns/op\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 100 {
		t.Errorf("ns/op = %v, want the fastest of the duplicate runs (100)", got["BenchmarkX"].NsPerOp)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok graphio 1s\nBenchmarkBad-8 x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results from noise input, got %v", got)
	}
}

func TestAppendHistoryAccumulatesRuns(t *testing.T) {
	base := time.Unix(1754000000, 0)
	obs.SetClock(func() time.Time { return base })
	defer obs.SetClock(nil)

	path := filepath.Join(t.TempDir(), "results", "bench_history.jsonl")
	first, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, first); err != nil {
		t.Fatal(err)
	}
	second := map[string]Result{"BenchmarkBound": {Iterations: 5, NsPerOp: 40000000}}
	if err := appendHistory(path, second); err != nil {
		t.Fatal(err)
	}

	recs, err := persist.ReadJournal(path)
	if err != nil {
		t.Fatalf("history not a clean journal: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d ledger records, want 2", len(recs))
	}
	var rec historyRecord
	if err := json.Unmarshal(recs[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "bench_run" {
		t.Errorf("kind = %q", rec.Kind)
	}
	if rec.Time != base.UTC().Format(time.RFC3339) {
		t.Errorf("time = %q, want the injected clock's %q", rec.Time, base.UTC().Format(time.RFC3339))
	}
	if rec.GOOS != runtime.GOOS || rec.GOARCH != runtime.GOARCH || rec.Go != runtime.Version() {
		t.Errorf("platform fields = %s/%s/%s", rec.GOOS, rec.GOARCH, rec.Go)
	}
	if rec.GitRev == "" {
		t.Error("git_rev empty (expected a short rev or \"unknown\")")
	}
	if len(rec.ConfigHash) != 12 {
		t.Errorf("config_hash = %q, want 12 hex chars", rec.ConfigHash)
	}
	if rec.Benches["BenchmarkBound"] != 41562341 || len(rec.Benches) != 2 {
		t.Errorf("benches = %v", rec.Benches)
	}
	// The two runs measured different benchmark sets, so their config
	// hashes must differ.
	var rec2 historyRecord
	if err := json.Unmarshal(recs[1], &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.ConfigHash == rec.ConfigHash {
		t.Error("config hash did not change with the benchmark set")
	}
}
