package main

import (
	"reflect"
	"testing"
)

func TestExtendTo(t *testing.T) {
	got := extendTo([]int{3, 4, 5}, 8, 1)
	if !reflect.DeepEqual(got, []int{3, 4, 5, 6, 7, 8}) {
		t.Errorf("extendTo step 1: %v", got)
	}
	got = extendTo([]int{4, 8}, 16, 4)
	if !reflect.DeepEqual(got, []int{4, 8, 12, 16}) {
		t.Errorf("extendTo step 4: %v", got)
	}
	// Max below the current maximum: unchanged.
	got = extendTo([]int{4, 8}, 6, 1)
	if !reflect.DeepEqual(got, []int{4, 8}) {
		t.Errorf("extendTo no-op: %v", got)
	}
}
