// Command experiments regenerates the paper's evaluation: one table per
// figure (Figures 7-11), the Section 5 closed-form tables, and the
// validation/ablation tables DESIGN.md indexes. Results are printed as
// aligned text and, with -out, written as CSV files plus a combined
// report.txt ready for plotting.
//
//	experiments                      # run everything at the default scale
//	experiments -exp fig7,fig11      # a subset
//	experiments -profile quick       # miniature sweep (seconds)
//	experiments -out results/        # also write CSVs
//	experiments -fft-max 12 -bhk-max 15 -mincut-timeout 1h   # paper scale
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphio/internal/dist"
	"graphio/internal/experiments"
	"graphio/internal/obs"
	"graphio/internal/plot"
)

// The coordinator feeds worker uploads straight into the sweep's merge
// layer; this pins the two packages' contracts together at compile time.
var _ dist.Sink = (*experiments.Merge)(nil)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment names (empty = all): fig7,fig8,fig9,fig10,fig11,hypercube,fft,er,sandwich,bestk,thm4vs5")
	out := flag.String("out", "", "directory for CSV output (empty = print only)")
	resume := flag.Bool("resume", false, "replay -out's manifest.json and skip experiments whose artifacts verify under an identical config; re-run failed, missing, or mismatched ones")
	crashAfter := flag.Int("crash-after", 0, "fault injection: SIGKILL this process after N experiments have committed (crash-consistency testing; 0 = off)")
	profile := flag.String("profile", "default", "sweep scale: default|quick")
	fftMax := flag.Int("fft-max", 0, "extend the FFT sweep up to this l")
	bhkMax := flag.Int("bhk-max", 0, "extend the Bellman-Held-Karp sweep up to this l")
	matmulMax := flag.Int("matmul-max", 0, "extend the matmul sweep up to this n (step 4)")
	mcTimeout := flag.Duration("mincut-timeout", 0, "override the per-graph min-cut time box")
	expTimeout := flag.Duration("experiment-timeout", 0, "deadline per experiment; a deadlined experiment fails and the sweep continues (0 = none)")
	maxK := flag.Int("maxk", 0, "override h, the number of eigenvalues computed")
	doPlot := flag.Bool("plot", false, "render figure tables as ASCII charts after running")
	plotDir := flag.String("plot-dir", "", "render saved CSVs from this directory and exit (no recomputation)")
	coordinator := flag.String("coordinator", "", "run as sweep coordinator: shard the selected experiments and serve the claim API on this address (requires -out; ':0' picks a port)")
	workerURL := flag.String("worker", "", "run as sweep worker: claim shards from the coordinator at this base URL and run them")
	workerID := flag.String("worker-id", "", "worker identity in leases and manifests (default <host>-<pid>)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "coordinator: how long a claimed shard stays owned without a renewal")
	shardAttempts := flag.Int("shard-attempts", 3, "coordinator: grants per shard before it is poisoned")
	chaosStall := flag.Bool("chaos-stall", false, "worker chaos mode: claim one shard, then stall without renewing until killed (lease-expiry testing)")
	authToken := flag.String("auth-token", os.Getenv("GRAPHIO_TOKEN"), "require/present 'Authorization: Bearer <token>' on the claim API (default $GRAPHIO_TOKEN; empty disables auth)")
	lockWait := flag.Duration("lock-wait", 0, "wait up to this long for -out's sweep lock instead of failing immediately (restart overlap)")
	ofl := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := ofl.Begin(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	// os.Exit skips defers, so flush the observability bundle explicitly on
	// every path: metrics from a failed sweep are exactly the interesting ones.
	finish := func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}

	if *plotDir != "" {
		if err := plotSaved(*plotDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			finish()
			os.Exit(1)
		}
		finish()
		return
	}

	var cfg experiments.Config
	switch *profile {
	case "default":
		cfg = experiments.DefaultConfig()
	case "quick":
		cfg = experiments.QuickConfig()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *fftMax > 0 {
		cfg.FFTLevels = extendTo(cfg.FFTLevels, *fftMax, 1)
	}
	if *bhkMax > 0 {
		cfg.BHKCities = extendTo(cfg.BHKCities, *bhkMax, 1)
	}
	if *matmulMax > 0 {
		cfg.MatMulSizes = extendTo(cfg.MatMulSizes, *matmulMax, 4)
	}
	if *mcTimeout > 0 {
		cfg.MinCutTimeout = *mcTimeout
	}
	if *maxK > 0 {
		cfg.MaxK = *maxK
	}
	cfg.ExperimentTimeout = *expTimeout
	cfg.Progress = os.Stderr
	cfg.Resume = *resume
	cfg.LockWait = *lockWait
	if *resume && *out == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume needs -out (the manifest lives in the output directory)")
		os.Exit(2)
	}
	if *crashAfter > 0 {
		// Deterministic crash injection for the verify-resume harness: die
		// the hard way (no handlers, no flush) once N experiments are
		// durable, exactly like an OOM kill between experiments.
		committed := 0
		cfg.AfterExperiment = func(string) {
			if committed++; committed == *crashAfter {
				p, _ := os.FindProcess(os.Getpid())
				_ = p.Kill()
				select {} // never runs on: Kill is SIGKILL
			}
		}
	}

	var names []string
	if *exp != "" {
		for _, n := range strings.Split(*exp, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	// Distributed modes: -coordinator shards the sweep and merges worker
	// uploads; -worker claims shards and runs them through the same RunAll
	// path a local sweep uses. Both honour the obs context (SIGINT, -timeout).
	if *coordinator != "" || *workerURL != "" {
		if *coordinator != "" && *workerURL != "" {
			fmt.Fprintln(os.Stderr, "experiments: -coordinator and -worker are mutually exclusive")
			os.Exit(2)
		}
		var poisoned []string
		var err error
		if *coordinator != "" {
			if *out == "" {
				fmt.Fprintln(os.Stderr, "experiments: -coordinator needs -out (the merged sweep lands there)")
				os.Exit(2)
			}
			poisoned, err = runCoordinator(ofl.Context(), cfg, *out, names, *coordinator, *leaseTTL, *shardAttempts, *authToken)
		} else {
			err = runWorker(ofl.Context(), cfg, *workerURL, *workerID, *chaosStall, *authToken)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
		finish()
		switch {
		case ofl.Interrupted():
			os.Exit(130)
		case err != nil:
			os.Exit(1)
		case len(poisoned) > 0:
			// A degraded sweep produced a partial report that names its
			// poisoned shards; the exit code makes the degradation unmissable.
			os.Exit(1)
		}
		return
	}

	// The sweep runs under the obs context: SIGINT/SIGTERM and the -timeout
	// budget cancel it, RunAll stops at the next boundary with every
	// completed CSV on disk, and Finish still flushes telemetry below.
	start := obs.Now()
	tables, err := experiments.RunAll(ofl.Context(), cfg, *out, names, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		finish()
		if ofl.Interrupted() {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if *doPlot {
		for _, t := range tables {
			renderFigure(t)
		}
	}
	fmt.Printf("total %v\n", obs.Since(start).Round(time.Millisecond))
	finish()
	if ofl.Interrupted() {
		os.Exit(130)
	}
}

// shardNames resolves the -exp selection to shard names in canonical
// Runners() order — the order the merged report must render in.
func shardNames(names []string) []string {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []string
	for _, r := range experiments.Runners() {
		if len(want) == 0 || want[r.Name] {
			out = append(out, r.Name)
		}
	}
	return out
}

// runCoordinator shards the selected experiments, serves the claim API,
// and merges worker uploads into outDir. It returns the shards the sweep
// had to poison (a non-empty list exits non-zero in main).
func runCoordinator(ctx context.Context, cfg experiments.Config, outDir string, names []string, addr string, ttl time.Duration, attempts int, authToken string) ([]string, error) {
	shards := shardNames(names)
	if len(shards) == 0 {
		return nil, fmt.Errorf("no experiment matches %v", names)
	}
	merge, err := experiments.OpenMerge(ctx, outDir, cfg, cfg.Resume)
	if err != nil {
		return nil, err
	}
	defer merge.Close()
	c, err := dist.New(dist.Config{
		Shards: shards, ConfigHash: merge.ConfigHash(), Sink: merge,
		OutDir: outDir, Resume: cfg.Resume,
		LeaseTTL: ttl, MaxAttempts: attempts, AuthToken: authToken, Log: os.Stderr,
		// Grant the historically slowest shards first (LPT): a long shard
		// granted last would leave one worker grinding while the rest idle.
		WallHistory: merge.WallHistory(),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	bound, err := c.Start(addr)
	if err != nil {
		return nil, err
	}
	// Scripts parse this line for the bound address (':0' picks a port).
	fmt.Printf("coordinator listening on %s\n", bound)
	if err := c.Wait(ctx); err != nil {
		return nil, fmt.Errorf("sweep interrupted: %w", err)
	}
	included, err := merge.FinishReport(shards)
	if err != nil {
		return nil, err
	}
	poisoned := c.Poisoned()
	fmt.Printf("sweep complete: %d/%d shard(s) merged into %s\n", len(included), len(shards), outDir)
	for _, name := range poisoned {
		fmt.Printf("POISONED %s\n", name)
	}
	return poisoned, nil
}

// runWorker claims shards from the coordinator and runs each through the
// ordinary RunAll path (no local outDir — results upload instead), so a
// distributed shard behaves exactly like a local experiment: same config,
// same per-experiment timeout, same telemetry.
func runWorker(ctx context.Context, cfg experiments.Config, url, id string, stall bool, authToken string) error {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	run := func(rctx context.Context, shard string) (string, []byte, error) {
		tables, err := experiments.RunAll(rctx, cfg, "", []string{shard}, os.Stderr)
		if err != nil {
			return "", nil, err
		}
		if len(tables) != 1 {
			return "", nil, fmt.Errorf("shard %s produced %d tables, want 1", shard, len(tables))
		}
		var buf bytes.Buffer
		if err := tables[0].WriteCSV(&buf); err != nil {
			return "", nil, err
		}
		return tables[0].Title, buf.Bytes(), nil
	}
	return dist.RunWorker(ctx, dist.WorkerConfig{
		ID: id, Coordinator: url, ConfigHash: cfg.Hash(),
		AuthToken: authToken,
		Run:       run, StallAfterClaim: stall, Log: os.Stderr,
	})
}

// plotSaved renders every known figure CSV found in dir, in figure order.
func plotSaved(dir string) error {
	rendered := 0
	for _, name := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		ax := figureAxes[name]
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			continue // figure not present in this results directory
		}
		records, err := csv.NewReader(f).ReadAll()
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("reading %s.csv: %w", name, err)
		}
		if len(records) < 2 {
			continue
		}
		series, err := plot.FromTable(records[0], records[1:], ax.x, ax.prefixes...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			continue
		}
		opt := plot.Options{Title: name, XLabel: ax.x, YLabel: "I/O bound", LogY: ax.logY}
		if err := plot.Render(os.Stdout, series, opt); err != nil {
			return err
		}
		fmt.Println()
		rendered++
	}
	if rendered == 0 {
		return fmt.Errorf("no figure CSVs found in %s", dir)
	}
	return nil
}

// figureAxes maps figure tables to their x column and series prefixes.
var figureAxes = map[string]struct {
	x        string
	prefixes []string
	logY     bool
}{
	"fig7":  {"l", []string{"spectral_", "mincut_"}, true},
	"fig8":  {"n", []string{"spectral_", "mincut_"}, true},
	"fig9":  {"n", []string{"spectral_", "mincut_"}, true},
	"fig10": {"l", []string{"spectral_", "mincut_"}, true},
	"fig11": {"l", []string{"spectral_s", "mincut_s"}, true},
}

// renderFigure draws an ASCII chart for tables that have a known axis
// mapping; other tables are silently skipped.
func renderFigure(t *experiments.Table) {
	ax, ok := figureAxes[t.Name]
	if !ok {
		return
	}
	series, err := plot.FromTable(t.Columns, t.Rows, ax.x, ax.prefixes...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: plotting %s: %v\n", t.Name, err)
		return
	}
	opt := plot.Options{Title: t.Title, XLabel: ax.x, YLabel: "I/O bound", LogY: ax.logY}
	if err := plot.Render(os.Stdout, series, opt); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: plotting %s: %v\n", t.Name, err)
	}
	fmt.Println()
}

// extendTo appends step-spaced values after the slice's maximum up to max.
func extendTo(xs []int, max, step int) []int {
	hi := 0
	for _, x := range xs {
		if x > hi {
			hi = x
		}
	}
	for v := hi + step; v <= max; v += step {
		xs = append(xs, v)
	}
	return xs
}
