// TSP example: the Bellman-Held-Karp dynamic program (§5.1). Builds the
// boolean-hypercube computation graph for an l-city traveling salesman
// instance, computes serial and parallel spectral bounds (Theorems 4-6),
// compares them with the §5.1 closed form, and for small instances
// sandwiches J* with a simulated schedule.
//
//	go run ./examples/tsp [-cities 12] [-M 16]
package main

import (
	"flag"
	"fmt"

	"graphio/examples/internal/exutil"
	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/laplacian"
	"graphio/internal/pebble"
)

func main() {
	cities := flag.Int("cities", 12, "number of cities l (graph has 2^l vertices)")
	M := flag.Int("M", 16, "per-processor fast memory size")
	flag.Parse()

	l := *cities
	g := gen.BellmanHeldKarp(l)
	fmt.Printf("Bellman-Held-Karp for %d cities: hypercube with %d vertices, %d edges\n",
		l, g.N(), g.M())
	if g.MaxInDeg() > *M {
		exutil.Fatalf("M=%d cannot hold the %d operands of the final subproblems; raise -M", *M, g.MaxInDeg())
	}

	// Serial bound, both Laplacians.
	t4, err := core.SpectralBound(g, core.Options{M: *M})
	exutil.Check(err, "Theorem 4 bound for the BHK hypercube")
	t5, err := core.SpectralBound(g, core.Options{M: *M, Laplacian: laplacian.Original})
	exutil.Check(err, "Theorem 5 bound for the BHK hypercube")
	simple := analytic.HypercubeBoundSimple(l, *M)
	closed, bestK := analytic.HypercubeBoundOptimal(l, *M)
	fmt.Printf("serial bounds at M=%d:\n", *M)
	fmt.Printf("  Theorem 4 (normalized L̃):   %10.2f  (best k=%d)\n", t4.Bound, t4.BestK)
	fmt.Printf("  Theorem 5 (L / max outdeg):  %10.2f\n", t5.Bound)
	fmt.Printf("  §5.1 closed form (optimal α):%10.2f  (k=%d)\n", closed, bestK)
	fmt.Printf("  §5.1 closed form (α=1):     %10.2f  (2^(l+1)/(l+1) − 2M(l+1))\n", simple)

	// Parallel bounds (Theorem 6): some processor incurs at least this.
	fmt.Printf("parallel bounds at M=%d (busiest of p processors):\n", *M)
	for _, p := range []int{2, 4, 8} {
		par, err := core.SpectralBound(g, core.Options{M: *M, Processors: p})
		exutil.Check(err, fmt.Sprintf("Theorem 6 bound at p=%d", p))
		fmt.Printf("  p=%d: %10.2f\n", p, par.Bound)
	}

	// For small instances, sandwich J* with a simulated schedule.
	if l <= 10 {
		best, _, name, err := pebble.BestOrder(g, *M, pebble.Belady, 30, 1)
		exutil.Check(err, "searching evaluation orders for the sandwich")
		fmt.Printf("simulated upper bound: %d I/Os (order=%s)\n", best.Total(), name)
		fmt.Printf("J* sandwiched: %.2f ≤ J* ≤ %d\n", t4.Bound, best.Total())
	}
}
