// FFT example: reproduce the paper's §5.2 analysis end to end. For a sweep
// of FFT sizes it compares
//
//   - the computed spectral bound (Theorem 4 on the generated butterfly),
//   - the closed-form bound evaluated from the Theorem 7 butterfly
//     spectrum (no eigensolver at all), and
//   - the published asymptotically tight Hong-Kung bound Ω(l·2^l / log M),
//
// showing the closed form tracks Hong-Kung within the 1/log M factor the
// paper proves.
//
//	go run ./examples/fft [-M 4] [-max-l 11]
package main

import (
	"flag"
	"fmt"
	"math"

	"graphio/examples/internal/exutil"
	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/laplacian"
)

func main() {
	M := flag.Int("M", 4, "fast memory size")
	maxL := flag.Int("max-l", 11, "largest FFT level")
	flag.Parse()

	fmt.Printf("2^l-point FFT, M=%d\n", *M)
	fmt.Printf("%3s %8s %12s %12s %12s %12s %10s\n",
		"l", "n", "spectral_T4", "closedform", "closed_T5", "hong-kung", "cf/hk")
	for l := 3; l <= *maxL; l++ {
		g := gen.FFT(l)
		res, err := core.SpectralBound(g, core.Options{M: *M})
		exutil.Check(err, fmt.Sprintf("spectral bound for FFT l=%d", l))
		// Theorem 5 fed the exact closed-form spectrum: no eigensolver.
		spec := analytic.ButterflySpectrum(l)
		closedT5, _, _ := core.BoundFromEigenvalues(spec, g.N(), *M, 1, float64(g.MaxOutDeg()))
		cf, _ := analytic.FFTClosedForm(l, *M)
		hk := analytic.HongKungFFT(l, *M)
		fmt.Printf("%3d %8d %12.2f %12.2f %12.2f %12.2f %10.4f\n",
			l, g.N(), res.Bound, cf, closedT5, hk, cf/hk)
	}

	// The §5.2 punchline: the spectral closed form is within a 1/log2(M)
	// factor of the tight bound as l grows.
	l := *maxL
	cf, _ := analytic.FFTClosedForm(l, *M)
	hk := analytic.HongKungFFT(l, *M)
	if hk > 0 && cf > 0 {
		fmt.Printf("\nat l=%d: closed form / Hong-Kung = %.4f vs 1/log2(M) = %.4f\n",
			l, cf/hk, 1/math.Log2(float64(*M)))
	}

	// Theorem 4 vs Theorem 5 on the same graph (ablation §4.3): the
	// butterfly has uniform out-degree 2 away from the sinks, so the two
	// bounds nearly coincide.
	g := gen.FFT(8)
	t4, err := core.SpectralBound(g, core.Options{M: *M})
	exutil.Check(err, "Theorem 4 bound for the l=8 ablation")
	t5, err := core.SpectralBound(g, core.Options{M: *M, Laplacian: laplacian.Original})
	exutil.Check(err, "Theorem 5 bound for the l=8 ablation")
	fmt.Printf("l=8 ablation: Theorem 4 = %.2f, Theorem 5 = %.2f\n", t4.Bound, t5.Bound)
}
