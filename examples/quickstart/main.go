// Quickstart: trace a small computation, extract its graph, and compute
// the paper's spectral I/O lower bound plus a simulated upper bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"graphio/examples/internal/exutil"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/pebble"
	"graphio/internal/trace"
)

func main() {
	// The inner product of two 4-vectors, recorded through the tracer the
	// same way the paper's solver traces Python arithmetic (Figure 1 shows
	// the 2-element version of this graph).
	tr := trace.New()
	x := tr.Inputs("x", 4)
	y := tr.Inputs("y", 4)
	prods := make([]trace.Value, 4)
	for i := range prods {
		prods[i] = x[i].Mul(y[i])
	}
	trace.ReduceAdd(prods)
	g := tr.MustGraph("inner-product-4")

	fmt.Printf("computation graph: %d operations, %d dependencies\n", g.N(), g.M())

	// Spectral lower bound (Theorem 4) for a fast memory of M = 2 values.
	const M = 2
	res, err := core.SpectralBound(g, core.Options{M: M})
	exutil.Check(err, "spectral bound for the traced inner product")
	fmt.Printf("spectral lower bound at M=%d: %.2f I/Os (best k = %d)\n", M, res.Bound, res.BestK)

	// Upper bound: simulate real evaluation orders under the same memory
	// model and keep the best.
	best, _, name, err := pebble.BestOrder(g, M, pebble.Belady, 50, 1)
	exutil.Check(err, "simulated upper bound for the traced inner product")
	fmt.Printf("best simulated schedule at M=%d: %d I/Os (reads=%d, writes=%d, order=%s)\n",
		M, best.Total(), best.Reads, best.Writes, name)
	fmt.Printf("J* is sandwiched: %.2f ≤ J* ≤ %d\n", res.Bound, best.Total())
	fmt.Println("(tree-like graphs have tiny spectral gaps, so the lower bound is often trivial there)")

	// A graph where the spectral method shines: the 256-point FFT
	// butterfly, whose connectivity forces real data movement.
	fft := gen.FFT(8)
	fres, err := core.SpectralBound(fft, core.Options{M: 4})
	exutil.Check(err, "spectral bound for the 256-point FFT")
	fbest, _, _, err := pebble.BestOrder(fft, 4, pebble.Belady, 10, 1)
	exutil.Check(err, "simulated upper bound for the 256-point FFT")
	fmt.Printf("\n256-point FFT (%d vertices) at M=4: %.2f ≤ J* ≤ %d\n",
		fft.N(), fres.Bound, fbest.Total())
}
