// Hierarchy example: the multi-level extension of the paper's two-level
// bound. Pick a three-level hierarchy (think registers / L1 / L2 over
// DRAM): the Theorem 4 bound applies at every level boundary with the
// cumulative capacity above it, and the multi-level simulator shows how
// much traffic a real schedule pushes across each boundary.
//
//	go run ./examples/hierarchy [-graph-level 9]
package main

import (
	"flag"
	"fmt"

	"graphio/examples/internal/exutil"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/hier"
	"graphio/internal/pebble"
)

func main() {
	level := flag.Int("graph-level", 9, "FFT level l (graph has (l+1)·2^l vertices)")
	flag.Parse()

	g := gen.FFT(*level)
	caps := []int{4, 16, 64}
	fmt.Printf("%s: %d vertices on a %d/%d/%d hierarchy (infinite memory below)\n",
		g.Name(), g.N(), caps[0], caps[1], caps[2])

	floors, err := hier.Bounds(g, caps, core.Options{})
	exutil.Check(err, "per-boundary Theorem 4 floors")

	for name, order := range map[string][]int{
		"kahn":     g.TopoOrder(),
		"frontier": pebble.FrontierOrder(g),
	} {
		res, err := hier.Simulate(g, order, caps)
		exutil.Check(err, fmt.Sprintf("simulating the %s order on the hierarchy", name))
		fmt.Printf("\n%s order:\n", name)
		cum := 0
		for i, c := range caps {
			cum += c
			fmt.Printf("  boundary %d (below %2d fast slots): floor %8.1f ≤ traffic %8d\n",
				i, cum, floors[i], res.Transfers[i])
		}
	}
	fmt.Println("\neach boundary obeys its own Theorem 4 floor: everything above the")
	fmt.Println("boundary is one fast memory of the cumulative capacity.")
}
