// Package exutil is the examples' shared fatal-error helper: every example
// routes unrecoverable errors through Check or Fatalf so failures exit
// non-zero with a one-line message saying what was being attempted, instead
// of a bare log.Fatal(err) with no context.
package exutil

import (
	"fmt"
	"os"
)

// Check exits with status 1 when err is non-nil, printing the failing
// operation and the error on one line. A nil err is a no-op.
func Check(err error, context string) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s: %v\n", prog(), context, err)
	os.Exit(1)
}

// Fatalf prints a formatted one-line message and exits with status 1. For
// failures that are not carried by an error value (bad flag combinations,
// impossible configurations).
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
	os.Exit(1)
}

func prog() string {
	if len(os.Args) > 0 && os.Args[0] != "" {
		base := os.Args[0]
		for i := len(base) - 1; i >= 0; i-- {
			if base[i] == '/' {
				return base[i+1:]
			}
		}
		return base
	}
	return "example"
}
