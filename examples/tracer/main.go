// Tracer example: extract the computation graph of a user-written
// numerical routine — here, one step of a Jacobi-style 1-D stencil
// relaxation followed by a dot-product convergence check — and analyze its
// I/O. This mirrors the paper's §6.1 workflow: run the program once under
// the tracer, get a DAG, and bound any execution of it.
//
//	go run ./examples/tracer [-size 64] [-M 8] [-sweeps 3]
package main

import (
	"flag"
	"fmt"

	"graphio/examples/internal/exutil"
	"graphio/internal/core"
	"graphio/internal/mincut"
	"graphio/internal/pebble"
	"graphio/internal/trace"
)

// jacobiSweep records one relaxation sweep: u'[i] = (u[i-1] + u[i+1]) / 2,
// expressed with the tracer's generic Op for the halving.
func jacobiSweep(tr *trace.Tracer, u []trace.Value) []trace.Value {
	next := make([]trace.Value, len(u))
	for i := range u {
		switch i {
		case 0:
			next[i] = u[i] // boundary held fixed
		case len(u) - 1:
			next[i] = u[i]
		default:
			next[i] = tr.Op("avg", u[i-1], u[i+1])
		}
	}
	return next
}

func main() {
	size := flag.Int("size", 64, "stencil points")
	M := flag.Int("M", 8, "fast memory size")
	sweeps := flag.Int("sweeps", 3, "relaxation sweeps to trace")
	flag.Parse()

	tr := trace.New()
	u := tr.Inputs("u", *size)
	v := u
	for s := 0; s < *sweeps; s++ {
		v = jacobiSweep(tr, v)
	}
	// Convergence check: residual = Σ (v_i − u_i)².
	diffs := make([]trace.Value, *size)
	for i := range diffs {
		d := v[i].Sub(u[i])
		diffs[i] = d.Mul(d)
	}
	trace.ReduceAdd(diffs)

	g := tr.MustGraph(fmt.Sprintf("jacobi-%d-x%d", *size, *sweeps))
	fmt.Printf("traced %d operations, %d dependencies (max in-degree %d)\n",
		g.N(), g.M(), g.MaxInDeg())

	// Lower bounds: spectral and the convex min-cut baseline.
	spec, err := core.SpectralBound(g, core.Options{M: *M})
	exutil.Check(err, "spectral bound for the traced stencil")
	mc, err := mincut.ConvexMinCutBound(g, mincut.Options{M: *M})
	exutil.Check(err, "convex min-cut baseline for the traced stencil")
	fmt.Printf("lower bounds at M=%d: spectral %.2f, convex min-cut %.2f\n",
		*M, spec.Bound, mc.Bound)

	// How much does the schedule matter in practice? Compare eviction
	// policies and order heuristics under the simulator.
	orders := map[string][]int{
		"kahn": g.TopoOrder(),
		"dfs":  g.DFSTopoOrder(),
	}
	for name, order := range orders {
		lru, err := pebble.Simulate(g, order, *M, pebble.LRU)
		exutil.Check(err, fmt.Sprintf("simulating the %s order under LRU", name))
		bel, err := pebble.Simulate(g, order, *M, pebble.Belady)
		exutil.Check(err, fmt.Sprintf("simulating the %s order under Belady", name))
		fmt.Printf("order %-5s: LRU %5d I/Os, Belady %5d I/Os\n", name, lru.Total(), bel.Total())
	}
	best, _, name, err := pebble.BestOrder(g, *M, pebble.Belady, 40, 1)
	exutil.Check(err, "searching evaluation orders for the traced stencil")
	fmt.Printf("best schedule found: %d I/Os (%s)\n", best.Total(), name)
	fmt.Printf("J* sandwiched: %.2f ≤ J* ≤ %d\n", spec.Bound, best.Total())
}
