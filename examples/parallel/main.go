// Parallel example: the Theorem 6 extension. With p processors, each with
// its own fast memory of M values, the paper shows some processor must
// incur ⌊n/(kp)⌋·Σλ_i − 2kM of I/O no matter how the work is divided.
// This program sweeps p for the FFT and Bellman-Held-Karp graphs and shows
// where the per-processor certificate fades — the point past which the
// spectral method can no longer prove a communication floor.
//
//	go run ./examples/parallel [-M 8]
package main

import (
	"flag"
	"fmt"

	"graphio/examples/internal/exutil"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
)

func main() {
	M := flag.Int("M", 8, "per-processor fast memory")
	flag.Parse()

	procs := []int{1, 2, 4, 8, 16, 32}
	for _, g := range []*graph.Graph{gen.FFT(9), gen.BellmanHeldKarp(11)} {
		m := *M
		if g.MaxInDeg() > m {
			m = g.MaxInDeg()
		}
		// One eigensolve serves the whole sweep: Theorem 6 only changes
		// the ⌊n/(kp)⌋ factor in front of the cached spectrum.
		res, err := core.SpectralBound(g, core.Options{M: m})
		exutil.Check(err, fmt.Sprintf("spectral bound for %s", g.Name()))
		fmt.Printf("%s (n=%d, M=%d per processor)\n", g.Name(), g.N(), m)
		fmt.Printf("  %6s %14s %8s\n", "p", "busiest-proc", "best k")
		for _, p := range procs {
			bound, bestK, _ := core.BoundFromEigenvalues(res.Eigenvalues, g.N(), m, p, 1)
			fmt.Printf("  %6d %14.2f %8d\n", p, bound, bestK)
		}
		fmt.Println()
	}
	fmt.Println("the certificate decays roughly like 1/p: with more processors each")
	fmt.Println("one owns fewer vertices, so fewer segment boundaries are forced per")
	fmt.Println("processor — Theorem 6 makes no assumption about load balance.")
}
