#!/bin/sh
# Chaos gate for the distributed sweep (make verify-dist).
#
# One coordinator shards a short sweep across three workers: one is
# SIGKILLed mid-shard, one claims a shard and stalls without renewing
# until its lease expires, and the coordinator itself is SIGKILLed and
# restarted with -resume halfway through. The surviving worker must
# drain the queue, no shard may be poisoned, and the merged artifact
# set must be byte-identical to a single-process run — after which the
# merged manifest must still satisfy a plain -resume. Run from the
# repository root.
set -eu

EXPS="hypercube,fft,er"
work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

# wait_line FILE PATTERN PID: poll FILE until PATTERN appears, failing
# fast if process PID dies first (its logs are the diagnosis).
wait_line() {
    i=0
    while ! grep -q "$2" "$1" 2>/dev/null; do
        if ! kill -0 "$3" 2>/dev/null; then
            echo "verify-dist: process $3 died before '$2' appeared in $1:" >&2
            cat "$1" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "verify-dist: timed out waiting for '$2' in $1" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "verify-dist: building cmd/experiments"
go build -o "$work/experiments" ./cmd/experiments

echo "verify-dist: single-process reference sweep"
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/ref" >/dev/null

echo "verify-dist: starting coordinator (lease TTL 1s)"
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/dist" \
    -coordinator 127.0.0.1:0 -lease-ttl 1s >"$work/coord1.log" 2>&1 &
coord=$!
pids="$pids $coord"
wait_line "$work/coord1.log" "^coordinator listening on " "$coord"
addr=$(sed -n 's/^coordinator listening on //p' "$work/coord1.log" | head -n 1)
echo "verify-dist: coordinator bound to $addr"

echo "verify-dist: worker 1 (staller) claims a shard and stops renewing"
"$work/experiments" -profile quick -worker "http://$addr" -worker-id staller \
    -chaos-stall >"$work/staller.log" 2>&1 &
staller=$!
pids="$pids $staller"
wait_line "$work/staller.log" "stalling on" "$staller"

echo "verify-dist: worker 2 (victim) starts, then is SIGKILLed mid-shard"
"$work/experiments" -profile quick -worker "http://$addr" -worker-id victim \
    >"$work/victim.log" 2>&1 &
victim=$!
pids="$pids $victim"
wait_line "$work/victim.log" "running" "$victim"
kill -9 "$victim"

echo "verify-dist: coordinator SIGKILLed, restarted with -resume on $addr"
kill -9 "$coord"
wait "$coord" 2>/dev/null || true
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/dist" \
    -coordinator "$addr" -lease-ttl 1s -resume -lock-wait 10s \
    >"$work/coord2.log" 2>&1 &
coord=$!
pids="$pids $coord"
wait_line "$work/coord2.log" "^coordinator listening on " "$coord"

echo "verify-dist: worker 3 (healthy) drains the remaining shards"
"$work/experiments" -profile quick -worker "http://$addr" -worker-id healthy \
    >"$work/healthy.log" 2>&1 &
healthy=$!
pids="$pids $healthy"

set +e
wait "$coord"
status=$?
set -e
if [ "$status" -ne 0 ]; then
    echo "verify-dist: restarted coordinator exited $status (want 0):" >&2
    cat "$work/coord2.log" >&2
    exit 1
fi

fail=0
if grep -q "^POISONED" "$work/coord2.log"; then
    echo "verify-dist: a shard was poisoned; chaos should only delay, not kill:" >&2
    grep "^POISONED" "$work/coord2.log" >&2
    fail=1
fi
if ! grep -q "sweep complete" "$work/coord2.log"; then
    echo "verify-dist: no 'sweep complete' line from the restarted coordinator" >&2
    fail=1
fi
# The chaos must actually have fired: a lease expiry from the stalled or
# killed worker, and a WAL replay on the coordinator restart.
if ! grep -q "expired" "$work/coord1.log" "$work/coord2.log"; then
    echo "verify-dist: no lease ever expired; the stall/kill chaos never bit" >&2
    fail=1
fi
if ! grep -q "WAL replayed" "$work/coord2.log"; then
    echo "verify-dist: restarted coordinator did not replay its WAL" >&2
    fail=1
fi

for f in "$work"/ref/*.csv "$work/ref/report.txt"; do
    name=$(basename "$f")
    if ! cmp -s "$f" "$work/dist/$name"; then
        echo "verify-dist: $name differs between single-process and distributed run" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "verify-dist: merged manifest must satisfy a plain single-process -resume"
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/dist" -resume \
    >"$work/resume.log" 2>&1
if ! grep -q "skipping" "$work/resume.log"; then
    echo "verify-dist: -resume on the merged outDir recomputed everything:" >&2
    cat "$work/resume.log" >&2
    exit 1
fi
for f in "$work"/ref/*.csv "$work/ref/report.txt"; do
    name=$(basename "$f")
    if ! cmp -s "$f" "$work/dist/$name"; then
        echo "verify-dist: $name changed after the post-merge resume" >&2
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "verify-dist: OK (chaos converged, artifacts byte-identical, manifest resumable)"
fi
exit "$fail"
