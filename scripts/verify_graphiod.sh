#!/bin/sh
# Chaos gate for the bound daemon (make verify-graphiod).
#
# A graphiod on a fresh data dir accepts a batch of jobs and is SIGKILLed
# with most of them unfinished. A second daemon on the same -data dir must
# replay the WAL, finish every accepted job, and serve a resubmission of
# the same work from the result cache with a byte-identical artifact
# (matched by content hash). A job submitted with an unmeetable deadline
# must fail typed 'deadline' while its siblings complete, bearer auth must
# gate the API end to end, and a SIGTERM must drain cleanly (exit 0).
# Run from the repository root.
set -eu

TOKEN=verify-secret
work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

# wait_line FILE PATTERN PID: poll FILE until PATTERN appears, failing
# fast if process PID dies first (its logs are the diagnosis).
wait_line() {
    i=0
    while ! grep -q "$2" "$1" 2>/dev/null; do
        if ! kill -0 "$3" 2>/dev/null; then
            echo "verify-graphiod: process $3 died before '$2' appeared in $1:" >&2
            cat "$1" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "verify-graphiod: timed out waiting for '$2' in $1" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "verify-graphiod: building cmd/graphiod"
go build -o "$work/graphiod" ./cmd/graphiod

echo "verify-graphiod: starting daemon 1 (1 worker, auth on)"
GRAPHIO_TOKEN=$TOKEN "$work/graphiod" -data "$work/data" -addr 127.0.0.1:0 \
    -workers 1 >"$work/d1.log" 2>&1 &
d1=$!
pids="$pids $d1"
wait_line "$work/d1.log" "^graphiod listening on " "$d1"
addr=$(sed -n 's/^graphiod listening on //p' "$work/d1.log" | head -n 1)
server="http://$addr"
echo "verify-graphiod: daemon 1 bound to $addr"

echo "verify-graphiod: unauthenticated requests must be rejected"
code=$(curl -s -o /dev/null -w '%{http_code}' "$server/v1/jobs")
if [ "$code" != "401" ]; then
    echo "verify-graphiod: tokenless GET /v1/jobs returned $code, want 401" >&2
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' "$server/healthz")
if [ "$code" != "200" ]; then
    echo "verify-graphiod: /healthz returned $code, want 200 without a token" >&2
    exit 1
fi

echo "verify-graphiod: submitting jobs (first one slow enough to be mid-flight at the kill)"
submit() {
    GRAPHIO_TOKEN=$TOKEN "$work/graphiod" submit -server "$server" "$@"
}
submit -spec fft:8 -m 64 >"$work/sub1" # n=2304: iterative solve, takes a while
submit -spec bhk:6 -m 1 -max-k 8 -solver dense >"$work/sub2"
submit -spec fft:5 -m 16 -max-k 8 -solver dense >"$work/sub3"
cat "$work/sub1" "$work/sub2" "$work/sub3"
id1=$(sed -n 's/^id=\([^ ]*\).*/\1/p' "$work/sub1")
id2=$(sed -n 's/^id=\([^ ]*\).*/\1/p' "$work/sub2")
id3=$(sed -n 's/^id=\([^ ]*\).*/\1/p' "$work/sub3")

echo "verify-graphiod: SIGKILLing daemon 1 with jobs unfinished"
kill -9 "$d1"
wait "$d1" 2>/dev/null || true

echo "verify-graphiod: restarting on the same -data dir"
GRAPHIO_TOKEN=$TOKEN "$work/graphiod" -data "$work/data" -addr 127.0.0.1:0 \
    -workers 2 >"$work/d2.log" 2>&1 &
d2=$!
pids="$pids $d2"
wait_line "$work/d2.log" "^graphiod listening on " "$d2"
addr=$(sed -n 's/^graphiod listening on //p' "$work/d2.log" | head -n 1)
server="http://$addr"
if ! grep -q "recovered .* unresolved job" "$work/d2.log"; then
    echo "verify-graphiod: daemon 2 did not report a WAL replay:" >&2
    cat "$work/d2.log" >&2
    exit 1
fi

echo "verify-graphiod: waiting for the replayed jobs to finish"
GRAPHIO_TOKEN=$TOKEN "$work/graphiod" wait -server "$server" \
    -id "$id1,$id2,$id3" -timeout 3m >"$work/wait1"
cat "$work/wait1"
for id in "$id1" "$id2" "$id3"; do
    if ! grep -q "^id=$id .*status=done" "$work/wait1"; then
        echo "verify-graphiod: replayed job $id did not finish done" >&2
        exit 1
    fi
done

echo "verify-graphiod: resubmitting job 2 must be a byte-identical cache hit"
sha_done=$(sed -n "s/^id=$id2 .* sha=\([0-9a-f]*\).*/\1/p" "$work/wait1")
submit -spec bhk:6 -m 1 -max-k 8 -solver dense >"$work/resub"
cat "$work/resub"
if ! grep -q "cached=true" "$work/resub"; then
    echo "verify-graphiod: resubmission was not served from the cache" >&2
    exit 1
fi
sha_hit=$(sed -n 's/^id=[^ ]* .* sha=\([0-9a-f]*\).*/\1/p' "$work/resub")
if [ -z "$sha_done" ] || [ "$sha_done" != "$sha_hit" ]; then
    echo "verify-graphiod: cache hit sha '$sha_hit' != recomputed sha '$sha_done'" >&2
    exit 1
fi

echo "verify-graphiod: a stalled job must fail typed 'deadline' while a sibling completes"
submit -spec fft:9 -m 64 -timeout-ms 300 >"$work/sub4" # n=5120: cannot finish in 300ms
submit -spec fft:4 -m 8 -max-k 8 -solver dense >"$work/sub5"
id4=$(sed -n 's/^id=\([^ ]*\).*/\1/p' "$work/sub4")
id5=$(sed -n 's/^id=\([^ ]*\).*/\1/p' "$work/sub5")
set +e
GRAPHIO_TOKEN=$TOKEN "$work/graphiod" wait -server "$server" \
    -id "$id4,$id5" -timeout 2m >"$work/wait2"
set -e
cat "$work/wait2"
if ! grep -q "^id=$id4 .*status=failed.*error=deadline" "$work/wait2"; then
    echo "verify-graphiod: over-deadline job $id4 did not fail typed 'deadline'" >&2
    exit 1
fi
if ! grep -q "^id=$id5 .*status=done" "$work/wait2"; then
    echo "verify-graphiod: sibling job $id5 did not complete past the stalled one" >&2
    exit 1
fi

echo "verify-graphiod: /metrics must expose the serve counters"
GRAPHIO_TOKEN=$TOKEN "$work/graphiod" metrics -server "$server" >"$work/metrics"
for m in serve_jobs_accepted serve_jobs_done serve_jobs_replayed serve_cache_hits; do
    if ! grep -q "^$m " "$work/metrics"; then
        echo "verify-graphiod: metric $m missing from /metrics" >&2
        cat "$work/metrics" >&2
        exit 1
    fi
done

echo "verify-graphiod: SIGTERM must drain cleanly (exit 0)"
kill -TERM "$d2"
set +e
wait "$d2"
status=$?
set -e
if [ "$status" -ne 0 ]; then
    echo "verify-graphiod: drained daemon exited $status (want 0):" >&2
    cat "$work/d2.log" >&2
    exit 1
fi

echo "verify-graphiod: OK (WAL replay finished every job, cache replays byte-identical, deadlines typed, drain clean)"
