#!/bin/sh
# Crash-consistency check for the experiments sweep (make verify-resume).
#
# A sweep SIGKILLed between experiment commits (-crash-after) and then
# resumed (-resume) must converge to an artifact set byte-identical to an
# uninterrupted run, skip the work that survived the kill, and leave no
# temp files or lock behind. Run from the repository root.
set -eu

EXPS="hypercube,fft,er"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "verify-resume: building cmd/experiments"
go build -o "$work/experiments" ./cmd/experiments

echo "verify-resume: uninterrupted reference sweep"
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/ref" >/dev/null

echo "verify-resume: sweep SIGKILLed after the first commit"
set +e
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/crash" -crash-after 1 >/dev/null 2>&1
status=$?
set -e
if [ "$status" -eq 0 ]; then
    echo "verify-resume: crash run exited 0; the injected kill never fired" >&2
    exit 1
fi

echo "verify-resume: resuming the killed sweep"
"$work/experiments" -profile quick -exp "$EXPS" -out "$work/crash" -resume >"$work/resume.log" 2>&1

if ! grep -q "skipping" "$work/resume.log"; then
    echo "verify-resume: resume recomputed everything (no skip in the log):" >&2
    cat "$work/resume.log" >&2
    exit 1
fi

fail=0
for f in "$work"/ref/*.csv "$work/ref/report.txt"; do
    name=$(basename "$f")
    if ! cmp -s "$f" "$work/crash/$name"; then
        echo "verify-resume: $name differs between reference and resumed run" >&2
        fail=1
    fi
done

if find "$work/crash" -name '*.tmp' | grep -q .; then
    echo "verify-resume: temp debris left in the resumed outDir" >&2
    fail=1
fi
if [ -e "$work/crash/manifest.lock" ]; then
    echo "verify-resume: lock file survived the resumed sweep" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "verify-resume: OK (artifacts byte-identical, no debris)"
fi
exit "$fail"
